// Package cfg builds intraprocedural control-flow graphs for the sammy-vet
// dataflow analyzers. Like the rest of internal/analysis it is a stdlib-only
// stand-in for the x/tools equivalent (golang.org/x/tools/go/cfg), shaped so
// analyzers port mechanically if that package ever becomes available.
//
// A Graph is built from one function body (ast.FuncDecl.Body or
// ast.FuncLit.Body — nested function literals are NOT inlined; analyze them
// as separate graphs). Blocks carry the statements and condition expressions
// evaluated in them, in source order; edges carry a kind and, for branches,
// the condition expression, so flow analyzers can refine facts per branch
// (e.g. treat the true edge of `err != nil` as an error path).
//
// Modeled constructs: if/else, for (cond/post/infinite), range, switch,
// type switch (incl. fallthrough), select (incl. the blocking no-default
// form — an empty `select {}` has no successors at all), labeled
// break/continue, goto, return, and terminal calls (panic, os.Exit,
// log.Fatal*, runtime.Goexit). Deferred calls are collected into a single
// synthetic "defers" block that every return and panic edge routes through
// before reaching Exit, which is how `defer mu.Unlock()` participates in
// lock-state dataflow and `defer wg.Done()` shows up on every exit path.
//
// Deliberate approximations, chosen for the analyzers this package serves:
// condition expressions are single nodes (no short-circuit decomposition),
// range binding is represented by the ranged expression only, and the defers
// block lists deferred calls in registration order (the runtime runs them in
// reverse; none of the suite's lattices are order-sensitive within the
// block).
package cfg

import (
	"go/ast"
	"go/token"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind int

const (
	// EdgeSeq is unconditional fall-through.
	EdgeSeq EdgeKind = iota
	// EdgeTrue leaves a branch when its condition holds (or a loop head
	// into its body, or a range head into the next iteration).
	EdgeTrue
	// EdgeFalse leaves a branch when its condition fails (or a loop/range
	// head once iteration is exhausted).
	EdgeFalse
	// EdgeCase dispatches from a switch/select head into one case body.
	EdgeCase
	// EdgeReturn leaves the function via an explicit or implicit return.
	EdgeReturn
	// EdgePanic leaves the function via panic or a terminal call
	// (os.Exit, log.Fatal*, runtime.Goexit).
	EdgePanic
)

// String returns the short edge label used in dot output.
func (k EdgeKind) String() string {
	switch k {
	case EdgeTrue:
		return "T"
	case EdgeFalse:
		return "F"
	case EdgeCase:
		return "case"
	case EdgeReturn:
		return "ret"
	case EdgePanic:
		return "panic"
	default:
		return ""
	}
}

// Edge is one directed control-flow edge.
type Edge struct {
	To   *Block
	Kind EdgeKind
	// Cond is the branch condition for EdgeTrue/EdgeFalse (nil for a
	// range head, whose "condition" is iteration progress).
	Cond ast.Expr
}

// Block is one straight-line run of statements.
type Block struct {
	Index int
	// Label names the block's structural role ("entry", "for.head",
	// "select.case", "defers", ...) for dot dumps and debugging.
	Label string
	// Nodes are the statements and condition expressions evaluated in this
	// block, in order. Compound statements contribute only the parts
	// evaluated here (an if contributes its init and cond; its body lives
	// in successor blocks).
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Name   string
	Entry  *Block
	Exit   *Block
	Blocks []*Block // creation order; Entry is Blocks[0]
}

// New builds the CFG of one function body. name labels the graph in dot
// output; body is fd.Body or lit.Body and must be non-nil.
func New(name string, body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{Name: name},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Label: "exit"} // appended last, after defers
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.exitVia(EdgeReturn) // implicit return at fall-off-end
	b.finish()
	return b.g
}

// edgeRef names one edge in place so the defers pass can retarget it.
type edgeRef struct {
	from *Block
	idx  int
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label string // non-empty when the construct is labeled
	brk   *Block
	cont  *Block // nil for switch/select
}

type pendingGoto struct {
	ref   edgeRef
	label string
}

type builder struct {
	g            *builderGraph
	cur          *Block // nil after a terminator until the next block opens
	frames       []frame
	labels       map[string]*Block
	gotos        []pendingGoto
	exitEdges    []edgeRef // return/panic edges, rerouted through defers
	deferred     []ast.Node
	pendingLabel string
	fallTo       *Block // fallthrough target inside a switch case
}

// builderGraph aliases Graph so builder methods read naturally.
type builderGraph = Graph

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Label: label}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, opening an unreachable one if the
// previous statement terminated the path (dead code after return/panic).
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) edge(from, to *Block, kind EdgeKind, cond ast.Expr) edgeRef {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind, Cond: cond})
	return edgeRef{from: from, idx: len(from.Succs) - 1}
}

// jump closes the current path into to (no-op on a dead path).
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to, EdgeSeq, nil)
		b.cur = nil
	}
}

// exitVia closes the current path out of the function.
func (b *builder) exitVia(kind EdgeKind) {
	if b.cur == nil {
		return
	}
	b.exitEdges = append(b.exitEdges, b.edge(b.cur, b.g.Exit, kind, nil))
	b.cur = nil
}

// takeLabel consumes the label pending from an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break/continue target: the innermost matching frame,
// or the one with the given label.
func (b *builder) findFrame(label string, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if needCont && f.cont == nil {
			continue
		}
		return f
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel() // labels on if only name goto targets; frame-less
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.block()
		then := b.newBlock("if.then")
		after := b.newBlock("if.done")
		b.edge(cond, then, EdgeTrue, s.Cond)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock("if.else")
			b.edge(cond, elseB, EdgeFalse, s.Cond)
		} else {
			b.edge(cond, after, EdgeFalse, s.Cond)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.jump(head)
		b.cur = head
		body := b.newBlock("for.body")
		after := b.newBlock("for.done")
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, body, EdgeTrue, s.Cond)
			b.edge(head, after, EdgeFalse, s.Cond)
		} else {
			b.edge(head, body, EdgeSeq, nil)
		}
		b.cur = nil
		b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.jump(cont)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.jump(head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.edge(head, body, EdgeTrue, nil)
		b.edge(head, after, EdgeFalse, nil)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, func(cc *ast.CaseClause, head *Block) {
			for _, e := range cc.List {
				head.Nodes = append(head.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		after := b.newBlock("select.done")
		b.frames = append(b.frames, frame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			name := "select.case"
			if cc.Comm == nil {
				name = "select.default"
			}
			caseB := b.newBlock(name)
			b.edge(head, caseB, EdgeCase, nil)
			b.cur = caseB
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no cases blocks forever: head keeps zero
		// successors and after is reachable only through case bodies.
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, false); f != nil {
				b.jump(f.brk)
			} else {
				b.cur = nil // malformed input; drop the path
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, true); f != nil {
				b.jump(f.cont)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			ref := b.edge(b.block(), b.g.Exit, EdgeSeq, nil) // patched in finish
			b.gotos = append(b.gotos, pendingGoto{ref: ref, label: s.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.jump(b.fallTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.exitVia(EdgeReturn)

	case *ast.DeferStmt:
		b.add(s)
		b.deferred = append(b.deferred, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.exitVia(EdgePanic)
		}

	case nil:
		// tolerated: some callers synthesize partial ASTs

	default:
		// Assign, Decl, Go, Send, IncDec, Empty, ...: plain nodes.
		b.add(s)
	}
}

// switchBody lowers the shared case structure of switch and type switch.
// addExprs, when non-nil, copies a clause's case expressions into the head
// block (they are evaluated there, not in the case body).
func (b *builder) switchBody(label string, body *ast.BlockStmt, addExprs func(*ast.CaseClause, *Block)) {
	head := b.block()
	after := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, brk: after})

	type caseWork struct {
		clause *ast.CaseClause
		block  *Block
	}
	var cases []caseWork
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		name := "switch.case"
		if cc.List == nil {
			name = "switch.default"
			hasDefault = true
		}
		cb := b.newBlock(name)
		if addExprs != nil {
			addExprs(cc, head)
		}
		b.edge(head, cb, EdgeCase, nil)
		cases = append(cases, caseWork{clause: cc, block: cb})
	}
	if !hasDefault {
		b.edge(head, after, EdgeSeq, nil)
	}
	savedFall := b.fallTo
	for i, cw := range cases {
		b.fallTo = nil
		if i+1 < len(cases) {
			b.fallTo = cases[i+1].block
		}
		b.cur = cw.block
		b.stmtList(cw.clause.Body)
		b.jump(after)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// isTerminalCall reports whether expr is a call that never returns,
// recognized syntactically: panic(...), os.Exit, log.Fatal/Fatalf/Fatalln,
// runtime.Goexit.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln":
				return true
			}
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// finish patches gotos, routes exit edges through the defers block, appends
// Exit, and fills Preds.
func (b *builder) finish() {
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			pg.ref.from.Succs[pg.ref.idx].To = target
		}
	}
	if len(b.deferred) > 0 {
		defers := b.newBlock("defers")
		defers.Nodes = b.deferred
		for _, ref := range b.exitEdges {
			ref.from.Succs[ref.idx].To = defers
		}
		b.edge(defers, b.g.Exit, EdgeSeq, nil)
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	for _, blk := range b.g.Blocks {
		for _, e := range blk.Succs {
			e.To.Preds = append(e.To.Preds, blk)
		}
	}
}

// ReachableFromEntry returns the set of blocks reachable from Entry.
func (g *Graph) ReachableFromEntry() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(blk *Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, e := range blk.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

// CanReachExit returns the set of blocks from which Exit is reachable. A
// reachable block outside this set sits in an inescapable cycle — the
// signature of a goroutine that can never terminate.
func (g *Graph) CanReachExit() map[*Block]bool {
	// Reverse reachability from Exit over Preds.
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(blk *Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, p := range blk.Preds {
			walk(p)
		}
	}
	walk(g.Exit)
	return seen
}

// Inspect walks n like ast.Inspect but does not descend into nested
// function literals: their bodies belong to other control-flow graphs.
// Statement-level analyzers use it to fold facts over Block.Nodes without
// absorbing a closure's internals.
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}
