package cfg_test

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/cfg"
)

// -update regenerates the golden dot dumps:
//
//	go test ./internal/analysis/cfg -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden dot files")

// buildFunc parses src (a file body) and returns the CFG of the named
// function.
func buildFunc(t *testing.T, src, name string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Name.Name == name && fd.Body != nil {
			return cfg.New(name, fd.Body), fset
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// goldenCases are the constructions ISSUE 10 calls out plus the remaining
// shapes the dataflow analyzers lean on. Each gets an exact dot golden
// under testdata/golden.
var goldenCases = []struct {
	name string
	src  string
}{
	{"defer_in_loop", `
func deferInLoop(files []string) error {
	for _, f := range files {
		fd, err := open(f)
		if err != nil {
			return err
		}
		defer fd.Close()
	}
	return nil
}`},
	{"panic_recover", `
func panicRecover(x int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrap(r)
		}
	}()
	if x < 0 {
		panic("negative")
	}
	return nil
}`},
	{"labeled_break_continue", `
func labeled(rows [][]int) int {
	total := 0
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			total += v
		}
	}
	return total
}`},
	{"for_select", `
func forSelect(stop chan struct{}, work chan int) {
	for {
		select {
		case <-stop:
			return
		case v := <-work:
			handle(v)
		}
	}
}`},
	{"for_select_no_exit", `
func forSelectNoExit(tick chan int) {
	for {
		select {
		case v := <-tick:
			handle(v)
		}
	}
}`},
	{"switch_fallthrough", `
func classify(n int) string {
	switch {
	case n == 0:
		fallthrough
	case n > 0:
		return "non-negative"
	default:
		return "negative"
	}
}`},
	{"terminal_calls", `
func terminal(bad bool) {
	if bad {
		os.Exit(2)
	}
	log.Fatalf("unreached? no: %v", bad)
}`},
	{"goto_loop", `
func gotoLoop(n int) int {
	i := 0
again:
	if i < n {
		i++
		goto again
	}
	return i
}`},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			// Derive the function name from the first FuncDecl.
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+tc.src, parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing: %v", err)
			}
			var fd *ast.FuncDecl
			for _, d := range f.Decls {
				if x, ok := d.(*ast.FuncDecl); ok {
					fd = x
					break
				}
			}
			g := cfg.New(fd.Name.Name, fd.Body)
			got := g.Dot(fset)

			golden := filepath.Join("testdata", "golden", tc.name+".dot")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (rerun with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Errorf("dot output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestForSelectReachability pins the semantic difference between the two
// for/select goldens: a stop case makes the loop escapable, its absence
// makes every loop block unable to reach exit.
func TestForSelectReachability(t *testing.T) {
	g, _ := buildFunc(t, goldenCases[3].src, "forSelect")
	reach, canExit := g.ReachableFromEntry(), g.CanReachExit()
	for _, blk := range g.Blocks {
		if reach[blk] && !canExit[blk] {
			t.Errorf("forSelect: block %d (%s) reachable but cannot reach exit", blk.Index, blk.Label)
		}
	}

	g, _ = buildFunc(t, goldenCases[4].src, "forSelectNoExit")
	reach, canExit = g.ReachableFromEntry(), g.CanReachExit()
	trapped := 0
	for _, blk := range g.Blocks {
		if reach[blk] && !canExit[blk] {
			trapped++
		}
	}
	if trapped == 0 {
		t.Error("forSelectNoExit: expected loop blocks that cannot reach exit, found none")
	}
}

// TestEmptySelectBlocksForever pins the no-case select: its head has no
// successors at all.
func TestEmptySelectBlocksForever(t *testing.T) {
	g, _ := buildFunc(t, `
func block() {
	select {}
}`, "block")
	if canExit := g.CanReachExit(); canExit[g.Entry] {
		t.Error("select {} should make exit unreachable from entry")
	}
}

// TestDefersOnAllExitPaths pins that both the return edge and the panic
// edge route through the defers block.
func TestDefersOnAllExitPaths(t *testing.T) {
	g, _ := buildFunc(t, `
func f(bad bool) {
	defer cleanup()
	if bad {
		panic("bad")
	}
}`, "f")
	var defers *cfg.Block
	for _, blk := range g.Blocks {
		if blk.Label == "defers" {
			defers = blk
		}
	}
	if defers == nil {
		t.Fatal("no defers block")
	}
	if len(defers.Nodes) != 1 {
		t.Fatalf("defers block has %d nodes, want the cleanup() call", len(defers.Nodes))
	}
	// Every edge into Exit must come from the defers block.
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == g.Exit && blk != defers {
				t.Errorf("block %d (%s) reaches exit bypassing defers", blk.Index, blk.Label)
			}
		}
	}
}

// TestBreakInSelectBreaksSelectNotLoop pins the classic trap: break inside
// a select case terminates the select, so the enclosing for loop stays
// inescapable without a return.
func TestBreakInSelectBreaksSelectNotLoop(t *testing.T) {
	g, _ := buildFunc(t, `
func f(c chan int) {
	for {
		select {
		case <-c:
			break
		}
	}
}`, "f")
	reach, canExit := g.ReachableFromEntry(), g.CanReachExit()
	trapped := 0
	for _, blk := range g.Blocks {
		if reach[blk] && !canExit[blk] {
			trapped++
		}
	}
	if trapped == 0 {
		t.Error("break-in-select must not escape the for loop")
	}
}
