// Package flow is the generic forward-dataflow layer the sammy-vet
// analyzers run on top of internal/analysis/cfg. Each analyzer supplies a
// lattice — a fact type, a join, an equality test, and transfer functions —
// and the worklist solver computes the fixpoint of block-entry and
// block-exit facts. It is deliberately small: forward, intraprocedural,
// and deterministic (the worklist drains in block-index order, so facts and
// diagnostics never depend on map iteration).
package flow

import (
	"go/ast"

	"repro/internal/analysis/cfg"
)

// Lattice describes one analyzer's abstract domain over facts of type F.
// Facts must be treated as immutable values: Join and TransferNode return
// new facts rather than mutating their inputs, because a fact may be shared
// between the solver's tables and an analyzer's own bookkeeping.
type Lattice[F any] struct {
	// Join combines the facts of two incoming edges at a merge point.
	Join func(a, b F) F

	// Equal reports whether two facts are the same; the solver stops
	// propagating a block once its entry fact stops changing.
	Equal func(a, b F) bool

	// TransferNode applies one Block node (a statement or condition
	// expression) to the fact flowing through it.
	TransferNode func(n ast.Node, f F) F

	// TransferEdge, optional, refines the fact along one outgoing edge —
	// e.g. the true edge of `err != nil` enters an error path. It runs
	// after the block's nodes.
	TransferEdge func(e cfg.Edge, f F) F
}

// Result holds the fixpoint facts of one Forward run.
type Result[F any] struct {
	// In[b] is the fact at b's entry; Out[b] after its last node (before
	// edge refinement). Blocks unreachable from entry are absent.
	In, Out map[*cfg.Block]F
}

// TransferBlock folds a block's nodes over a fact, yielding the block-exit
// fact. Analyzers reuse it to recover intra-block states: fold In[b] node
// by node to learn the fact in force at a particular statement.
func (l *Lattice[F]) TransferBlock(b *cfg.Block, f F) F {
	for _, n := range b.Nodes {
		f = l.TransferNode(n, f)
	}
	return f
}

// Forward computes the forward fixpoint over g starting from the entry
// fact. Facts reach a block only along CFG edges, so code after a return
// or inside an inescapable loop keeps whatever the lattice's join of its
// real predecessors is — never an invented state.
func Forward[F any](g *cfg.Graph, l *Lattice[F], entry F) *Result[F] {
	res := &Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	res.In[g.Entry] = entry

	// Worklist keyed by block index for determinism; inQueue dedupes.
	queue := []*cfg.Block{g.Entry}
	inQueue := map[*cfg.Block]bool{g.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		out := l.TransferBlock(b, res.In[b])
		res.Out[b] = out
		for _, e := range b.Succs {
			next := out
			if l.TransferEdge != nil {
				next = l.TransferEdge(e, next)
			}
			old, seen := res.In[e.To]
			merged := next
			if seen {
				merged = l.Join(old, next)
				if l.Equal(merged, old) {
					continue
				}
			}
			res.In[e.To] = merged
			if !inQueue[e.To] {
				inQueue[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return res
}
