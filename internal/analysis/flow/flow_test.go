package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/flow"
)

func build(t *testing.T, src string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return cfg.New(fd.Name.Name, fd.Body), fset
		}
	}
	t.Fatal("no function")
	return nil, nil
}

// markLattice is a simple must-analysis: fact is true iff a call to mark()
// has definitely executed on every path.
func markLattice() *flow.Lattice[bool] {
	return &flow.Lattice[bool]{
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		TransferNode: func(n ast.Node, f bool) bool {
			found := f
			cfg.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						found = true
					}
				}
				return true
			})
			return found
		},
	}
}

// exitFact folds the facts of all edges into Exit.
func exitFact(t *testing.T, g *cfg.Graph, res *flow.Result[bool]) bool {
	t.Helper()
	f, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("exit unreachable")
	}
	return f
}

func TestMustAnalysisBranches(t *testing.T) {
	// mark() on only one branch: not definite at exit.
	g, _ := build(t, `
func f(b bool) {
	if b {
		mark()
	}
	done()
}`)
	res := flow.Forward(g, markLattice(), false)
	if exitFact(t, g, res) {
		t.Error("mark on one branch must not be definite at exit")
	}

	// mark() on both branches: definite.
	g, _ = build(t, `
func f(b bool) {
	if b {
		mark()
	} else {
		mark()
	}
	done()
}`)
	res = flow.Forward(g, markLattice(), false)
	if !exitFact(t, g, res) {
		t.Error("mark on both branches must be definite at exit")
	}
}

func TestLoopFixpoint(t *testing.T) {
	// mark() inside a conditional loop body may run zero times.
	g, _ := build(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
	done()
}`)
	res := flow.Forward(g, markLattice(), false)
	if exitFact(t, g, res) {
		t.Error("loop body may not execute; mark must not be definite")
	}

	// mark() before the loop stays definite through the back edge.
	g, _ = build(t, `
func f(n int) {
	mark()
	for i := 0; i < n; i++ {
		spin()
	}
	done()
}`)
	res = flow.Forward(g, markLattice(), false)
	if !exitFact(t, g, res) {
		t.Error("mark before the loop must stay definite at exit")
	}
}

func TestEdgeRefinement(t *testing.T) {
	// An error-path lattice: fact is "on an error path"; the true edge of
	// `err != nil` sets it.
	lat := &flow.Lattice[bool]{
		Join:         func(a, b bool) bool { return a && b },
		Equal:        func(a, b bool) bool { return a == b },
		TransferNode: func(n ast.Node, f bool) bool { return f },
		TransferEdge: func(e cfg.Edge, f bool) bool {
			if e.Kind == cfg.EdgeTrue {
				if bin, ok := e.Cond.(*ast.BinaryExpr); ok && strings.Contains(types(bin), "err != nil") {
					return true
				}
			}
			return f
		},
	}
	g, _ := build(t, `
func f() error {
	err := work()
	if err != nil {
		return err
	}
	return nil
}`)
	res := flow.Forward(g, lat, false)
	var thenBlock, doneBlock *cfg.Block
	for _, b := range g.Blocks {
		switch b.Label {
		case "if.then":
			thenBlock = b
		case "if.done":
			doneBlock = b
		}
	}
	if !res.In[thenBlock] {
		t.Error("true edge of err != nil must mark the error path")
	}
	if res.In[doneBlock] {
		t.Error("false edge must stay off the error path")
	}
}

// types renders a binary expression for the contains check above (the
// fixture has no type info, so this is purely syntactic).
func types(e *ast.BinaryExpr) string {
	x, okx := e.X.(*ast.Ident)
	y, oky := e.Y.(*ast.Ident)
	if okx && oky {
		return x.Name + " " + e.Op.String() + " " + y.Name
	}
	return ""
}

func TestIntraBlockFold(t *testing.T) {
	g, _ := build(t, `
func f() {
	before()
	mark()
	after()
}`)
	lat := markLattice()
	res := flow.Forward(g, lat, false)
	// Fold the entry block node by node: the fact flips at the mark call.
	b := g.Entry
	f := res.In[b]
	var states []bool
	for _, n := range b.Nodes {
		f = lat.TransferNode(n, f)
		states = append(states, f)
	}
	want := []bool{false, true, true}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}

func TestUnreachableBlocksHaveNoFacts(t *testing.T) {
	g, _ := build(t, `
func f() {
	return
	mark()
}`)
	res := flow.Forward(g, markLattice(), false)
	for _, b := range g.Blocks {
		if b.Label == "unreachable" {
			if _, ok := res.In[b]; ok {
				t.Error("unreachable block must not receive facts")
			}
		}
	}
}
