// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the sammy-vet suite needs.
// The container this repo builds in has no module proxy access, so the
// x/tools framework cannot be vendored; the subset here — Analyzer, Pass,
// Diagnostic, line-based suppression comments — is API-shaped like the
// original so the analyzers port mechanically if x/tools ever becomes
// available.
//
// The design center is mechanical enforcement of repo invariants that are
// otherwise upheld only by convention: fixed-seed byte-identical traces
// (the golden FNV-64a tests), linear AllocPacket/FreePacket ownership in
// the allocation-free event core, hardened http.Server construction, and
// the nil-guarded obs idiom. See DESIGN.md §11 "Enforced invariants".
//
// # Suppression comments
//
// Every analyzer carries a SuppressKey. A diagnostic is suppressed when the
// flagged line — or the line immediately above it — bears a comment of the
// form
//
//	//sammy:<key>            (e.g. //sammy:nondeterministic-ok)
//	//sammy:<key>: reason    (a justification is strongly encouraged)
//
// Suppressed diagnostics are still collected (with Suppressed = true) so
// drivers can count honored suppressions, but they do not fail the build.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker. Unlike x/tools there is no
// fact or result plumbing — the suite's analyzers are all independent.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags; it must be a
	// valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `sammy-vet -help`.
	Doc string

	// SuppressKey is the token accepted in //sammy:<key> suppression
	// comments for this analyzer's diagnostics. Empty disables
	// suppression.
	SuppressKey string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Analyzer   string
	Suppressed bool // an in-source //sammy:<key> comment covers this site
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Diagnostics accumulates everything reported through Reportf,
	// suppressed findings included.
	Diagnostics []Diagnostic

	// suppressLines maps filename -> set of lines bearing this analyzer's
	// suppression comment. Built lazily on first report.
	suppressLines map[string]map[int]bool
}

// Reportf records a finding at pos. Findings on (or immediately below) a
// line carrying the analyzer's //sammy:<key> comment are marked suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	}
	if p.Analyzer.SuppressKey != "" {
		if p.suppressLines == nil {
			p.buildSuppressIndex()
		}
		position := p.Fset.Position(pos)
		if lines := p.suppressLines[position.Filename]; lines != nil {
			if lines[position.Line] || lines[position.Line-1] {
				d.Suppressed = true
			}
		}
	}
	p.Diagnostics = append(p.Diagnostics, d)
}

// buildSuppressIndex scans every comment in the package for
// //sammy:<SuppressKey> markers and records their file:line coordinates.
func (p *Pass) buildSuppressIndex() {
	p.suppressLines = make(map[string]map[int]bool)
	key := "sammy:" + p.Analyzer.SuppressKey
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if text != key && !strings.HasPrefix(text, key+":") && !strings.HasPrefix(text, key+" ") {
					continue
				}
				position := p.Fset.Position(c.Pos())
				lines := p.suppressLines[position.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.suppressLines[position.Filename] = lines
				}
				lines[position.Line] = true
			}
		}
	}
}

// --- shared type-query helpers used by several analyzers -------------------

// IsTestFile reports whether f was parsed from a _test.go file. Analyzers
// whose invariant is about production behavior (e.g. obsguard) skip test
// files; determinism and ownership checks deliberately do not.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// PathBase returns the last element of an import path ("repro/internal/sim"
// -> "sim"). Analyzers match packages by base so that analysistest fixtures
// (whose stub packages live under synthetic paths like "a/sim") exercise
// the same code paths as the real tree.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ObjPkgBase returns the base of obj's defining package path, or "" for
// universe/builtin objects.
func ObjPkgBase(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return PathBase(obj.Pkg().Path())
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function-typed variables, builtins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function or
// method pkgBase.name, where pkgBase is matched against the base of the
// defining package's import path.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgBase, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Name() == name && ObjPkgBase(fn) == pkgBase
}

// NamedType unwraps t (through pointers and aliases) to its *types.Named,
// or nil.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t is (a pointer to) the named type pkgBase.name.
func IsNamed(t types.Type, pkgBase, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && ObjPkgBase(obj) == pkgBase
}
