// Package a exercises the hardenedserver analyzer: unhardened http.Server
// literals, the ListenAndServe shortcuts, and the hardened pattern.
package a

import (
	"net/http"
	"time"
)

func bare() *http.Server {
	return &http.Server{ // want `missing IdleTimeout, ReadHeaderTimeout, WriteTimeout`
		Addr: ":8080",
	}
}

func partial() *http.Server {
	return &http.Server{ // want `missing IdleTimeout`
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
}

func hardened(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
}

func shortcut(addr string, h http.Handler) error {
	return http.ListenAndServe(addr, h) // want `http\.ListenAndServe runs an unhardened`
}

func shortcutTLS(addr string, h http.Handler) error {
	return http.ListenAndServeTLS(addr, "c", "k", h) // want `http\.ListenAndServeTLS runs an unhardened`
}

func methodOK(h http.Handler) error {
	srv := hardened(h)
	return srv.ListenAndServe() // the method on a hardened literal is fine
}

func audited() *http.Server {
	//sammy:server-ok: write deadline is re-armed per paced write by the stall watchdog
	return &http.Server{
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}
