package hardenedserver_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hardenedserver"
)

func TestHardenedServer(t *testing.T) {
	diags := antest.Run(t, hardenedserver.Analyzer, "hs/a")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:server-ok fixture site to be seen and suppressed")
	}
}
