// Package hardenedserver enforces the repo's HTTP hardening rule
// (DESIGN.md §10): every http.Server the repo constructs must bound a
// wedged or malicious peer with ReadHeaderTimeout, WriteTimeout and
// IdleTimeout. An http.Server composite literal missing any of the three
// is reported, as is any call to http.ListenAndServe /
// http.ListenAndServeTLS (which run the zero-valued, unbounded server).
//
// Servers configured field-by-field after construction (the
// configureTestServer idiom) should set the fields on the literal instead,
// or carry //sammy:server-ok with a justification — for instance a
// paced-streaming server whose WriteTimeout is deliberately managed per
// write by the overload stall watchdog.
package hardenedserver

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hardenedserver pass.
var Analyzer = &analysis.Analyzer{
	Name:        "hardenedserver",
	Doc:         "require ReadHeaderTimeout/WriteTimeout/IdleTimeout on every http.Server literal; forbid http.ListenAndServe",
	SuppressKey: "server-ok",
	Run:         run,
}

// requiredFields are the http.Server timeouts every construction must set.
var requiredFields = []string{"ReadHeaderTimeout", "WriteTimeout", "IdleTimeout"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLiteral flags http.Server{...} literals missing required timeouts.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isHTTPServer(tv.Type) {
		return
	}
	missing := map[string]bool{}
	for _, f := range requiredFields {
		missing[f] = true
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			delete(missing, key.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	names := make([]string, 0, len(missing))
	for f := range missing {
		names = append(names, f)
	}
	sort.Strings(names)
	pass.Reportf(lit.Pos(),
		"http.Server literal missing %s: unhardened servers let a wedged peer pin connections forever (set all of ReadHeaderTimeout, WriteTimeout, IdleTimeout)",
		strings.Join(names, ", "))
}

// checkCall flags http.ListenAndServe / http.ListenAndServeTLS, which
// construct an unbounded zero-value server internally.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // (*http.Server).ListenAndServe on a hardened literal is fine
	}
	if fn.Name() == "ListenAndServe" || fn.Name() == "ListenAndServeTLS" {
		pass.Reportf(call.Pos(),
			"http.%s runs an unhardened zero-value http.Server (build a literal with ReadHeaderTimeout/WriteTimeout/IdleTimeout and call its ListenAndServe method)",
			fn.Name())
	}
}

// isHTTPServer reports whether t is (a pointer to) net/http.Server.
func isHTTPServer(t types.Type) bool {
	n := analysis.NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
