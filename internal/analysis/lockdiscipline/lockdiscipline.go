// Package lockdiscipline checks the `// guarded by <mu>` contracts the repo
// writes on struct fields: a field carrying the annotation may only be read
// or written while the named sibling mutex is held, every lock taken on a
// path must be released before that path returns (directly or by a pending
// defer), and a mutex must never be unlocked twice.
//
// The check is a forward dataflow over the function's CFG. The fact tracks,
// per mutex expression (keyed by its printed form, e.g. "l.mu"), one of
// four states: Unknown (entry), Locked, Unlocked, or Maybe (paths
// disagree), plus the set of mutexes with a deferred unlock pending on
// every path. A guarded access is clean only in the Locked state; a
// double-unlock fires only in the definite Unlocked state (Unknown and
// Maybe stay quiet — helpers that unlock on behalf of a caller are the
// callee's contract, not a bug the analyzer can see).
//
// Escapes, in decreasing order of preference: functions whose name ends in
// "Locked" declare the caller-holds-the-lock convention and are skipped;
// values freshly constructed in the same function (`l := &Lease{...}`) are
// unshared and exempt; _test.go files are skipped; anything else carries an
// audited //sammy:lockdiscipline suppression.
//
// Function literals are analyzed as separate functions starting from
// Unknown: a closure that touches guarded state must take the lock itself
// (or be suppressed), because nothing guarantees when it runs.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/flow"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name:        "lockdiscipline",
	Doc:         "enforce `// guarded by <mu>` field annotations: guarded fields accessed only while the mutex is held, no lock held across return without a deferred unlock, no double-unlock",
	SuppressKey: "lockdiscipline",
	Run:         run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)`)

// lockState is the per-mutex abstract state.
type lockState int8

const (
	stUnknown lockState = iota // no information (entry, or helper contract)
	stLocked
	stUnlocked
	stMaybe // paths disagree
)

func (s lockState) String() string {
	switch s {
	case stLocked:
		return "locked"
	case stUnlocked:
		return "unlocked"
	case stMaybe:
		return "locked on some paths only"
	default:
		return "not visibly locked"
	}
}

// joinState merges two per-mutex states at a CFG merge point.
func joinState(a, b lockState) lockState {
	switch {
	case a == b:
		return a
	case a == stMaybe || b == stMaybe:
		return stMaybe
	case a == stLocked || b == stLocked:
		// Locked vs Unlocked/Unknown: cannot rely on the lock being held.
		return stMaybe
	default:
		// Unlocked vs Unknown: still definitely not held; keep Unknown so
		// double-unlock stays quiet on the unknown path.
		return stUnknown
	}
}

// fact is the dataflow fact: mutex states plus pending deferred unlocks.
// Treated as immutable; transfers copy before writing.
type fact struct {
	locks    map[string]lockState
	deferred map[string]bool
}

func (f fact) clone() fact {
	g := fact{
		locks:    make(map[string]lockState, len(f.locks)),
		deferred: make(map[string]bool, len(f.deferred)),
	}
	for k, v := range f.locks {
		g.locks[k] = v
	}
	for k := range f.deferred {
		g.deferred[k] = true
	}
	return g
}

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := strings.HasSuffix(fd.Name.Name, "Locked")
			// Analyze the declaration body and every nested literal as
			// separate graphs, each from the Unknown entry state.
			var bodies []*ast.BlockStmt
			if !exempt {
				bodies = append(bodies, fd.Body)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					bodies = append(bodies, lit.Body)
				}
				return true
			})
			for _, body := range bodies {
				checkFunc(pass, guarded, fd.Name.Name, body)
			}
		}
	}
	return nil
}

// collectGuarded maps each annotated field object to its guard's field
// name. Only annotations naming a sibling field of mutex type are
// enforceable by this intraprocedural grammar; a guard spelled as a path
// through another object (`guarded by w.mu`, the wheel protecting its
// streams) is documentation the analyzer cannot check and is ignored.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
						// Reject path guards: the ident must be the whole
						// guard expression, not the head of `w.mu`.
						if !strings.Contains(cg.Text(), m[0]+".") {
							mu = m[1]
						}
					}
				}
				if mu == "" || !hasMutexSibling(pass.TypesInfo, st, mu) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// hasMutexSibling reports whether st declares a field named mu whose type
// is (a pointer to) sync.Mutex or sync.RWMutex.
func hasMutexSibling(info *types.Info, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			t := info.TypeOf(field.Type)
			return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
		}
	}
	return false
}

type checker struct {
	pass    *analysis.Pass
	guarded map[types.Object]string
	fresh   map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, guarded map[types.Object]string, name string, body *ast.BlockStmt) {
	c := &checker{pass: pass, guarded: guarded, fresh: freshLocals(pass.TypesInfo, body)}
	g := cfg.New(name, body)
	lat := &flow.Lattice[fact]{
		Join:  c.join,
		Equal: factEqual,
		TransferNode: func(n ast.Node, f fact) fact {
			return c.apply(n, f, nil)
		},
	}
	res := flow.Forward(g, lat, fact{})

	// Reporting pass: refold each reachable block with diagnostics on.
	reportedEnd := false
	for _, blk := range g.Blocks {
		f, ok := res.In[blk]
		if !ok {
			continue
		}
		implicitReturn := false
		for _, e := range blk.Succs {
			if e.Kind == cfg.EdgeReturn {
				implicitReturn = true
			}
		}
		for _, n := range blk.Nodes {
			f = c.apply(n, f, pass)
			if _, ok := n.(*ast.ReturnStmt); ok {
				implicitReturn = false // the edge belongs to this return
			}
		}
		if implicitReturn && !reportedEnd {
			for _, key := range heldKeys(f) {
				reportedEnd = true
				pass.Reportf(body.Rbrace, "function ends while %s is still held and no deferred unlock is pending", key)
			}
		}
	}
}

// heldKeys returns the definitely-held mutexes with no pending deferred
// unlock, sorted for deterministic output.
func heldKeys(f fact) []string {
	var keys []string
	for k, s := range f.locks {
		if s == stLocked && !f.deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// apply transfers one CFG node over the fact; with pass non-nil it also
// reports violations seen at this node.
func (c *checker) apply(n ast.Node, f fact, pass *analysis.Pass) fact {
	if d, ok := n.(*ast.DeferStmt); ok {
		// The deferred call runs at exit (it is also a node of the defers
		// block); here it only registers the pending unlock.
		if key, method, ok := mutexOp(c.pass.TypesInfo, d.Call); ok && isUnlock(method) {
			f = f.clone()
			f.deferred[key] = true
		}
		return f
	}
	cfg.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			key, method, ok := mutexOp(c.pass.TypesInfo, m)
			if !ok {
				break
			}
			f = f.clone()
			if isUnlock(method) {
				if pass != nil && f.locks[key] == stUnlocked {
					pass.Reportf(m.Pos(), "%s.%s: %s is already unlocked on this path", key, method, key)
				}
				f.locks[key] = stUnlocked
			} else {
				f.locks[key] = stLocked
			}
		case *ast.SelectorExpr:
			if pass == nil {
				break
			}
			obj := c.pass.TypesInfo.Uses[m.Sel]
			mu, ok := c.guarded[obj]
			if !ok {
				break
			}
			if base, isIdent := ast.Unparen(m.X).(*ast.Ident); isIdent {
				if c.fresh[c.pass.TypesInfo.ObjectOf(base)] {
					break // freshly constructed here; not shared yet
				}
			}
			key := types.ExprString(m.X) + "." + mu
			if f.locks[key] != stLocked {
				pass.Reportf(m.Sel.Pos(), "field %s is guarded by %s but accessed while %s", types.ExprString(m), key, f.locks[key])
			}
		}
		return true
	})
	if ret, ok := n.(*ast.ReturnStmt); ok && pass != nil {
		for _, key := range heldKeys(f) {
			pass.Reportf(ret.Pos(), "return while %s is still held and no deferred unlock is pending", key)
		}
	}
	return f
}

// join merges two facts: per-key state join, deferred-set intersection.
func (c *checker) join(a, b fact) fact {
	out := fact{locks: make(map[string]lockState), deferred: make(map[string]bool)}
	for k, v := range a.locks {
		out.locks[k] = joinState(v, b.locks[k])
	}
	for k, v := range b.locks {
		if _, seen := a.locks[k]; !seen {
			out.locks[k] = joinState(v, stUnknown)
		}
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

func factEqual(a, b fact) bool {
	if len(a.deferred) != len(b.deferred) {
		return false
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	keys := make(map[string]bool, len(a.locks)+len(b.locks))
	for k := range a.locks {
		keys[k] = true
	}
	for k := range b.locks {
		keys[k] = true
	}
	for k := range keys {
		if a.locks[k] != b.locks[k] { // missing reads as stUnknown
			return false
		}
	}
	return true
}

// mutexOp recognizes Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex receiver and returns the receiver's printed form as the key.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if !analysis.IsNamed(t, "sync", "Mutex") && !analysis.IsNamed(t, "sync", "RWMutex") {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func isUnlock(method string) bool {
	return method == "Unlock" || method == "RUnlock"
}

// freshLocals collects local variables bound to values constructed in this
// body (`x := &T{...}`, `x := T{...}`, `x := new(T)`): they are unshared,
// so their guarded fields may be initialized lock-free.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if isFreshExpr(info, as.Rhs[i]) {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}
