package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	diags := antest.Run(t, lockdiscipline.Analyzer, "ld/a", "ld/sup")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want exactly the audited advisory-read site", suppressed)
	}
}
