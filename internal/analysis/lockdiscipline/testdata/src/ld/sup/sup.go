// Package sup holds the audited exception: an advisory stats read that
// tolerates torn values by design.
package sup

import "sync"

type gauge struct {
	mu sync.Mutex
	// guarded by mu
	v int
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (g *gauge) racyRead() int {
	//sammy:lockdiscipline: metrics read is advisory; a torn read costs one sample, not correctness
	return g.v
}
