// Package a exercises the lockdiscipline analyzer: guarded-field access
// with and without the lock, deferred and conditional unlocks, double
// unlocks, RWMutex, fresh locals, and the *Locked naming convention.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bare() int {
	return c.n // want `guarded by c\.mu but accessed while not visibly locked`
}

func (c *counter) maybeHeld(flag bool) {
	if flag {
		c.mu.Lock()
	}
	c.n++ // want `guarded by c\.mu but accessed while locked on some paths only`
	if flag {
		c.mu.Unlock()
	}
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	return c.n // want `guarded by c\.mu but accessed while unlocked`
}

func (c *counter) returnWhileHeld(flag bool) int {
	c.mu.Lock()
	if flag {
		return c.n // want `return while c\.mu is still held`
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) condDefer(flag bool) int {
	c.mu.Lock()
	if flag {
		defer c.mu.Unlock()
		return c.n
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) doubleUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Unlock() // want `c\.mu is already unlocked on this path`
}

// incLocked follows the caller-holds-the-lock naming convention.
func (c *counter) incLocked() {
	c.n++
}

func (c *counter) viaHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

// newCounter initializes guarded fields on a fresh, unshared value.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// closureNeedsOwnLock: a literal runs whenever it runs; the enclosing
// function's lock state is no promise.
func (c *counter) closureNeedsOwnLock() func() int {
	return func() int {
		return c.n // want `guarded by c\.mu but accessed while not visibly locked`
	}
}

func (c *counter) closureLocksItself() func() int {
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
}

type table struct {
	mu sync.RWMutex
	// guarded by mu
	m map[string]int
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

func (t *table) raceyLen() int {
	return len(t.m) // want `guarded by t\.mu but accessed while not visibly locked`
}

// node's comment names a guard through another object ("w.mu"): that is
// documentation outside the enforceable grammar, so no access is flagged.
type wheel struct {
	mu sync.Mutex
}

type node struct {
	w *wheel
	// Linkage, all guarded by w.mu.
	next *node
}

func (n *node) unchecked() *node {
	return n.next
}

// ring's comment names a sibling that is not a mutex, so the annotation is
// ignored rather than enforced against a key that can never be locked.
type ring struct {
	owner string
	// guarded by owner
	head *node
}

func (r *ring) peek() *node {
	return r.head
}
