package suite_test

import (
	"os"
	"testing"

	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// TestRepoIsClean is the self-check gate: the full analyzer suite over the
// whole module must produce zero failing findings. It is the in-process
// equivalent of `go run ./cmd/sammy-vet -stock=false ./...` exiting 0, so a
// change that violates an enforced invariant fails `go test ./...` even
// before CI runs the vet step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := load.ModuleRoot(wd)

	results, loadErrs, err := suite.Run(root, []string{"./..."})
	if err != nil {
		t.Fatalf("running suite over %s: %v", root, err)
	}
	if len(results) == 0 {
		t.Fatal("suite loaded zero packages")
	}
	// Load errors mean part of the tree went unanalyzed — that is a tool
	// failure here, not a skip.
	for _, le := range loadErrs {
		t.Errorf("load error: %v", le)
	}

	suppressed := 0
	for _, res := range results {
		for _, terr := range res.Pkg.TypeErrors {
			t.Errorf("%s: type error: %v", res.Pkg.ImportPath, terr)
		}
		for _, d := range res.Diagnostics {
			t.Errorf("%s: [%s] %s", res.Pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		suppressed += len(res.Suppressed)
	}
	// The tree carries a handful of justified //sammy:<key> comments (the
	// sim wall-clock gauges, the chaos default clock). If this drops to
	// zero the suppression plumbing itself has probably broken.
	if suppressed == 0 {
		t.Error("expected at least one honored suppression in the tree, found none")
	}
	t.Logf("analyzed %d packages, %d honored suppressions", len(results), suppressed)
}

// TestSuiteInventory pins the analyzer roster: CI docs (DESIGN.md §11) and
// the README name exactly these ten.
func TestSuiteInventory(t *testing.T) {
	want := []string{"durablerename", "eventref", "goroutinelifetime", "hardenedserver", "lockdiscipline", "obsguard", "packetownership", "sharedpacer", "simdeterminism", "spanend"}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.SuppressKey == "" {
			t.Errorf("analyzer %s has no suppression key", a.Name)
		}
		if suite.ByName(a.Name) != a {
			t.Errorf("ByName(%s) did not return the analyzer", a.Name)
		}
	}
	if suite.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
