// Package suite enumerates the sammy-vet analyzers and provides the
// standalone driver shared by cmd/sammy-vet and the repo self-check test.
package suite

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/durablerename"
	"repro/internal/analysis/eventref"
	"repro/internal/analysis/goroutinelifetime"
	"repro/internal/analysis/hardenedserver"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/obsguard"
	"repro/internal/analysis/packetownership"
	"repro/internal/analysis/sharedpacer"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/spanend"
)

// All returns the sammy-vet analyzer suite in stable (alphabetical) order.
// Each analyzer self-filters by package, so it is safe to run every one of
// them over every package.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		durablerename.Analyzer,
		eventref.Analyzer,
		goroutinelifetime.Analyzer,
		hardenedserver.Analyzer,
		lockdiscipline.Analyzer,
		obsguard.Analyzer,
		packetownership.Analyzer,
		sharedpacer.Analyzer,
		simdeterminism.Analyzer,
		spanend.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// PkgResult is the outcome of running the suite over one package.
type PkgResult struct {
	Pkg         *load.Package
	Diagnostics []analysis.Diagnostic // failing findings, position-sorted
	Suppressed  []analysis.Diagnostic // sites covered by //sammy:<key> comments
}

// RunPackage applies every analyzer in analyzers to one loaded package and
// splits the results into failing and suppressed diagnostics.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) (PkgResult, error) {
	res := PkgResult{Pkg: pkg}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return res, err
		}
		for _, d := range pass.Diagnostics {
			if d.Suppressed {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
	})
	return res, nil
}

// Run loads the packages matched by patterns (relative to dir) and applies
// the full suite to each. Type errors in loaded packages are reported on
// the PkgResult's Pkg (load.Package.TypeErrors); drivers decide whether to
// surface them. Load errors — packages or dependencies the loader could not
// provide — come back alongside the results and MUST be treated as tool
// errors by drivers: they mean part of the tree went unanalyzed.
func Run(dir string, patterns []string) ([]PkgResult, []load.LoadError, error) {
	pkgs, loadErrs, err := load.Packages(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	analyzers := All()
	results := make([]PkgResult, 0, len(pkgs))
	for _, pkg := range pkgs {
		res, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, loadErrs, err
		}
		results = append(results, res)
	}
	return results, loadErrs, nil
}
