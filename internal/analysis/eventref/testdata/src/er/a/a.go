// Package a exercises the eventref analyzer: containers and shared
// pointers over sim.EventRef versus the single-field overwrite pattern.
package a

import "er/sim"

type timers struct {
	pace sim.EventRef   // single struct field: the blessed pattern
	all  []sim.EventRef // want `slice/array of sim\.EventRef`
}

var byName map[string]sim.EventRef // want `map over sim\.EventRef`

func collect(s *sim.Simulator) {
	var pending []sim.EventRef // want `slice/array of sim\.EventRef`
	r := s.Schedule(func() {})
	pending = append(pending, r) // want `appended to a slice`
	_ = pending

	ch := make(chan sim.EventRef, 1) // want `channel of sim\.EventRef`
	ch <- r                          // want `sent on a channel`

	ptr := &r // want `address of sim\.EventRef taken`
	_ = ptr

	byName["pace"] = r // want `stored into a container`
}

func ptrParam(r *sim.EventRef) {} // want `pointer to sim\.EventRef`

func overwrite(s *sim.Simulator) {
	var t timers
	t.pace.Cancel()
	t.pace = s.Schedule(func() {}) // overwrite-in-place: fine
	if t.pace.Pending() {
		t.pace.Cancel()
	}
	t.pace = sim.EventRef{} // clearing to the zero ref: fine
}

func audited(s *sim.Simulator) {
	var snapshot []sim.EventRef //sammy:eventref-ok: bounded debug snapshot, never cancelled from
	snapshot = append(snapshot, s.Schedule(func() {})) //sammy:eventref-ok: see above
	_ = snapshot
}
