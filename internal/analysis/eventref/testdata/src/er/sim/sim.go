// Package sim is a structural stub of repro/internal/sim for the eventref
// fixtures.
package sim

type Event struct{}

type EventRef struct {
	e   *Event
	gen uint32
}

func (r EventRef) Pending() bool { return r.e != nil }
func (r EventRef) Cancel()       {}

type Simulator struct{}

func (s *Simulator) Schedule(fn func()) EventRef { return EventRef{} }
