// Package eventref polices how sim.EventRef handles are held outside
// package sim. An EventRef is a generation-checked handle to a pooled
// event slot: the blessed pattern is one live ref per timer, held in a
// local or a single struct field and overwritten on every reschedule
// (tcp.Conn.paceTimer, rtoTimer). Collections of refs defeat that model —
// stale refs accumulate while the underlying slots are recycled, and
// Pending/Cancel driven off an old collection entry silently targets
// whatever event reuses the slot after the 32-bit generation wraps.
//
// Outside package sim the analyzer flags:
//
//   - declaring container types over EventRef: []EventRef, [N]EventRef,
//     map[...]EventRef (key or value), chan EventRef, *EventRef;
//   - storing a ref dynamically: append(..., ref), m[k] = ref, ch <- ref;
//   - taking a ref's address (&ref), which creates a shared mutable
//     handle.
//
// Audited exceptions carry //sammy:eventref-ok with a justification.
package eventref

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the eventref pass.
var Analyzer = &analysis.Analyzer{
	Name:        "eventref",
	Doc:         "forbid collections of sim.EventRef outside the generation-checked single-field pattern",
	SuppressKey: "eventref-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.Pkg.Path()) == "sim" {
		return nil // the pool's own machinery
	}
	info := pass.TypesInfo
	isRef := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && analysis.IsNamed(tv.Type, "sim", "EventRef") &&
			!isPointer(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ArrayType:
				if typeIsRef(info, n.Elt) {
					pass.Reportf(n.Pos(), "slice/array of sim.EventRef: stale refs accumulate while event slots are recycled (hold one ref per timer and overwrite it)")
				}
			case *ast.MapType:
				if typeIsRef(info, n.Key) || typeIsRef(info, n.Value) {
					pass.Reportf(n.Pos(), "map over sim.EventRef: stale refs accumulate while event slots are recycled (hold one ref per timer and overwrite it)")
				}
			case *ast.ChanType:
				if typeIsRef(info, n.Value) {
					pass.Reportf(n.Pos(), "channel of sim.EventRef: refs crossing goroutines defeat the single-owner timer pattern")
				}
			case *ast.StarExpr:
				// *EventRef in type position (field, param, var decl).
				if tv, ok := info.Types[n]; ok && tv.IsType() && typeIsRef(info, n.X) {
					pass.Reportf(n.Pos(), "pointer to sim.EventRef: a shared mutable handle defeats the value-semantics generation check")
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" && isRef(n.X) {
					pass.Reportf(n.Pos(), "address of sim.EventRef taken: a shared mutable handle defeats the value-semantics generation check")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						for _, arg := range n.Args[min(1, len(n.Args)):] {
							if isRef(arg) {
								pass.Reportf(arg.Pos(), "sim.EventRef appended to a slice: stale refs accumulate while event slots are recycled")
							}
						}
					}
				}
			case *ast.SendStmt:
				if isRef(n.Value) {
					pass.Reportf(n.Value.Pos(), "sim.EventRef sent on a channel: refs crossing goroutines defeat the single-owner timer pattern")
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if isRef(n.Rhs[i]) && isMapOrSlice(info, ix.X) {
						pass.Reportf(n.Rhs[i].Pos(), "sim.EventRef stored into a container: stale refs accumulate while event slots are recycled")
					}
				}
			}
			return true
		})
	}
	return nil
}

// typeIsRef reports whether the type expression e denotes sim.EventRef.
func typeIsRef(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsType() && analysis.IsNamed(tv.Type, "sim", "EventRef") && !isPointer(tv.Type)
}

func isPointer(t types.Type) bool {
	_, ok := types.Unalias(t).(*types.Pointer)
	return ok
}

func isMapOrSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Array:
		return true
	}
	return false
}
