package eventref_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/eventref"
)

func TestEventRef(t *testing.T) {
	diags := antest.Run(t, eventref.Analyzer, "er/a")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:eventref-ok fixture sites to be seen and suppressed")
	}
}
