// Package durablerename enforces the fsync discipline of the checkpoint and
// lease rename protocol (DESIGN.md §13, §15): the atomic-write recipe is
// write tmp, fsync tmp, rename, fsync file, fsync parent dir — a crash at
// any instant then leaves either the old file or the new file, never a torn
// one, and the rename itself survives power loss. PR 10 made this recipe
// load-bearing (kill/resume byte-identity rides on it) but only convention
// kept new call sites honest.
//
// For every os.Rename call in non-test code the analyzer checks two
// dataflow facts on the enclosing function's CFG:
//
//  1. a file sync dominates the rename: on every path from entry to the
//     rename, (*os.File).Sync (or a helper named like fsyncFile) has been
//     called — the temp file's bytes are on disk before they get a name;
//  2. a directory sync follows the rename: on every path from the rename to
//     a function exit, a parent-dir sync (a helper named like fsyncDir /
//     syncDir / ensureDurableDir) executes — the rename itself is durable.
//     Paths that leave through the true edge of an `err != nil` test (or
//     the false edge of `err == nil`) are exempt: they propagate a failure
//     of the protocol itself, and the caller treats the write as not
//     having happened.
//
// The checks are intraprocedural and name-based for helpers: the analyzer
// does not prove the synced handle is the renamed file, it proves the
// protocol's shape. Renames that intentionally skip durability — the lease
// steal, whose file is advisory liveness state with a TTL, not data — carry
// //sammy:durablerename: with the justification.
package durablerename

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/flow"
)

// Analyzer is the durablerename pass.
var Analyzer = &analysis.Analyzer{
	Name:        "durablerename",
	Doc:         "require every os.Rename to be dominated by a file sync and followed on all non-error paths by a parent-dir sync (the tmp+fsync+rename checkpoint protocol)",
	SuppressKey: "durablerename",
	Run:         run,
}

// dirSyncRE matches helper functions that sync a directory.
var dirSyncRE = regexp.MustCompile(`(?i)^(f?sync(parent)?dir|dirsync|ensuredurabledir)$`)

// fileSyncHelperRE matches helper functions that sync a file by path.
var fileSyncHelperRE = regexp.MustCompile(`(?i)^f?syncfile$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				body, name = fn.Body, fn.Name.Name
			case *ast.FuncLit:
				body, name = fn.Body, "func-literal"
			default:
				return true
			}
			checkFunc(pass, name, body)
			return true // nested literals are visited on their own
		})
	}
	return nil
}

// checkFunc applies both requirements to every os.Rename in one function
// body (nested function literals excluded — they are their own graphs).
func checkFunc(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	renames := renameCalls(pass.TypesInfo, body)
	if len(renames) == 0 {
		return
	}
	g := cfg.New(name, body)

	// Requirement 1 as a must-analysis: fact = "a file sync has
	// definitely executed".
	lat := &flow.Lattice[bool]{
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		TransferNode: func(n ast.Node, f bool) bool {
			if f {
				return true
			}
			return containsCall(pass.TypesInfo, n, isFileSync)
		},
	}
	res := flow.Forward(g, lat, false)

	for _, rename := range renames {
		blk, idx := locate(g, rename)
		if blk == nil {
			continue // rename inside a nested literal; that graph checks it
		}
		var missing []string

		synced, ok := res.In[blk]
		if ok {
			for i := 0; i < idx && !synced; i++ {
				synced = lat.TransferNode(blk.Nodes[i], synced)
			}
			// The rename's own node may carry the sync in an init stmt
			// (`if err := tmp.Sync(); ...` precedes it structurally, so
			// this is already covered); the rename call itself never syncs.
			if !synced {
				missing = append(missing, "no (*os.File).Sync on any path before the rename (temp file may be torn after a crash)")
			}
		}

		if ret := firstUnsyncedExit(pass.TypesInfo, g, blk, idx); ret != "" {
			missing = append(missing, "a path after the rename reaches "+ret+" without a parent-directory sync (the rename itself may not survive a crash)")
		}

		if len(missing) > 0 {
			pass.Reportf(rename.Pos(), "os.Rename violates the durable tmp+fsync+rename protocol: %s", strings.Join(missing, "; "))
		}
	}
}

// renameCalls collects the os.Rename calls in body, excluding nested
// function literals.
func renameCalls(info *types.Info, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	for _, s := range body.List {
		cfg.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && analysis.IsPkgFunc(info, call, "os", "Rename") {
				out = append(out, call)
			}
			return true
		})
	}
	return out
}

// locate finds the block and node index whose node subtree contains call.
func locate(g *cfg.Graph, call *ast.CallExpr) (*cfg.Block, int) {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			found := false
			cfg.Inspect(n, func(m ast.Node) bool {
				if m == ast.Node(call) {
					found = true
				}
				return !found
			})
			if found {
				return blk, i
			}
		}
	}
	return nil, 0
}

// containsCall reports whether node n (closures excluded) contains a call
// matching pred.
func containsCall(info *types.Info, n ast.Node, pred func(*types.Info, *ast.CallExpr) bool) bool {
	found := false
	cfg.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && pred(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// isFileSync recognizes (*os.File).Sync and fsyncFile-shaped helpers.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Sync" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return analysis.IsNamed(sig.Recv().Type(), "os", "File")
		}
	}
	return fileSyncHelperRE.MatchString(fn.Name())
}

// isDirSync recognizes fsyncDir-shaped helpers (and ensureDurableDir, which
// syncs both the directory and its parent).
func isDirSync(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && dirSyncRE.MatchString(fn.Name())
}

// firstUnsyncedExit walks forward from the rename (block blk, node index
// idx) and returns a description of the first exit reachable without
// passing a directory sync, or "" if every non-error path syncs.
// Error-test edges (`err != nil` true, `err == nil` false) terminate the
// search on that path — they propagate a failure of the protocol itself —
// and so do panic edges.
func firstUnsyncedExit(info *types.Info, g *cfg.Graph, blk *cfg.Block, idx int) string {
	// `defer fsyncDir(dir)` satisfies every exit at once: all return and
	// panic edges route through the defers block.
	for _, b := range g.Blocks {
		if b.Label == "defers" {
			for _, n := range b.Nodes {
				if containsCall(info, n, isDirSync) {
					return ""
				}
			}
		}
	}
	type item struct {
		b    *cfg.Block
		from int
	}
	seen := map[*cfg.Block]bool{}
	work := []item{{blk, idx}} // node idx is the rename's own statement
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		satisfied := false
		for i := it.from; i < len(it.b.Nodes); i++ {
			n := it.b.Nodes[i]
			if containsCall(info, n, isDirSync) {
				satisfied = true
				break
			}
			if _, ok := n.(*ast.ReturnStmt); ok {
				return "a return"
			}
		}
		if satisfied {
			continue
		}
		for _, e := range it.b.Succs {
			if isErrorEdge(info, e) {
				continue
			}
			switch e.Kind {
			case cfg.EdgeReturn:
				// Explicit returns were caught as nodes above; an
				// EdgeReturn edge still live here is the implicit
				// fall-off-end return.
				return "the end of the function"
			case cfg.EdgePanic:
				continue
			}
			if e.To == g.Exit {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, item{e.To, 0})
			}
		}
	}
	return ""
}

// isErrorEdge reports whether e enters an error-propagation path: the true
// edge of `X != nil` or the false edge of `X == nil`, with X error-typed.
func isErrorEdge(info *types.Info, e cfg.Edge) bool {
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var wantKind cfg.EdgeKind
	switch bin.Op.String() {
	case "!=":
		wantKind = cfg.EdgeTrue
	case "==":
		wantKind = cfg.EdgeFalse
	default:
		return false
	}
	if e.Kind != wantKind {
		return false
	}
	operand := bin.X
	if isNil(bin.X) {
		operand = bin.Y
	} else if !isNil(bin.Y) {
		return false
	}
	t := info.TypeOf(operand)
	return t != nil && isErrorType(t)
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
