// Package a exercises the durablerename analyzer: the compliant
// tmp+fsync+rename+dirsync recipe, the partial recipes that drop one leg,
// and the patterns (error paths, defer, helper names) the checker must
// understand.
package a

import "os"

// fsyncDir is the helper shape the analyzer recognizes by name.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// compliant is the full DESIGN §13 recipe: write, sync file, rename, sync
// parent dir.
func compliant(dir, final string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// deferredDirSync syncs the directory via defer, which covers every exit.
func deferredDirSync(dir, final string, data []byte) error {
	defer fsyncDir(dir)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// noFileSync renames without ever syncing the temp file.
func noFileSync(dir, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want `no \(\*os\.File\)\.Sync on any path before the rename`
		return err
	}
	return fsyncDir(dir)
}

// noDirSync syncs the file but returns right after the rename.
func noDirSync(final string, tmp *os.File) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final) // want `a path after the rename reaches a return without a parent-directory sync`
}

// neither drops both legs of the protocol.
func neither(tmp, final string) { // fall-off-end after the rename
	os.Rename(tmp, final) // want `no \(\*os\.File\)\.Sync on any path before the rename.*reaches the end of the function without a parent-directory sync`
}

// syncOnOneBranchOnly must still flag: the else path renames unsynced.
func syncOnOneBranchOnly(flush bool, dir, final string, tmp *os.File) error {
	if flush {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp.Name(), final); err != nil { // want `no \(\*os\.File\)\.Sync on any path before the rename`
		return err
	}
	return fsyncDir(dir)
}

// dirSyncOnOneBranchOnly must still flag: the quiet path skips the sync.
func dirSyncOnOneBranchOnly(loud bool, dir, final string, tmp *os.File) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil { // want `a path after the rename reaches a return without a parent-directory sync`
		return err
	}
	if loud {
		return fsyncDir(dir)
	}
	return nil
}

// helperFileSync satisfies requirement 1 through an fsyncFile-shaped helper.
func helperFileSync(dir, tmp, final string) error {
	if err := fsyncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return fsyncDir(dir)
}

func fsyncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// loopRetry keeps the file-sync fact across the retry loop's back edge.
func loopRetry(dir, final string, tmp *os.File) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := os.Rename(tmp.Name(), final); err != nil {
			continue
		}
		return fsyncDir(dir)
	}
	return errFailed
}

var errFailed = os.ErrInvalid
