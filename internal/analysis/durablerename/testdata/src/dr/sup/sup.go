// Package sup holds the audited exception: a rename whose durability is
// deliberately skipped, carrying the //sammy:durablerename suppression.
package sup

import "os"

// stealLease mirrors the lease-steal pattern: the lease file is advisory
// liveness state with a TTL, so a lost rename is indistinguishable from a
// crashed holder and costs one lease term, not data.
func stealLease(tmp, path string) error {
	//sammy:durablerename: lease files are advisory TTL state; a lost steal costs one term, not data
	return os.Rename(tmp, path)
}
