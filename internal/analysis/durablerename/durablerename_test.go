package durablerename_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/durablerename"
)

func TestDurableRename(t *testing.T) {
	diags := antest.Run(t, durablerename.Analyzer, "dr/a", "dr/sup")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want exactly the audited lease-steal site", suppressed)
	}
}
