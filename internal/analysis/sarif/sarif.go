// Package sarif emits sammy-vet results in SARIF 2.1.0 (Static Analysis
// Results Interchange Format), the schema CI code-scanning services ingest.
// It models exactly the subset the suite needs — one run, one driver, a
// rule per analyzer, results with a single physical location, and in-source
// suppressions for honored //sammy:<key> comments — and a Validate pass
// that enforces the spec's required fields so the writer cannot drift into
// emitting unloadable logs.
package sarif

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// SchemaURI and Version identify SARIF 2.1.0, the only version emitted.
const (
	SchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	Version   = "2.1.0"
)

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []*Run `json:"runs"`
}

// Run is one invocation of the tool.
type Run struct {
	Tool    Tool      `json:"tool"`
	Results []*Result `json:"results"`

	ruleIndex map[string]int `json:"-"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver describes the producing tool and its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer, as a SARIF reportingDescriptor.
type Rule struct {
	ID               string         `json:"id"`
	ShortDescription Message        `json:"shortDescription"`
	Properties       map[string]any `json:"properties,omitempty"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID       string        `json:"ruleId"`
	RuleIndex    int           `json:"ruleIndex"`
	Level        string        `json:"level"` // error | warning | note | none
	Message      Message       `json:"message"`
	Locations    []Location    `json:"locations"`
	Suppressions []Suppression `json:"suppressions,omitempty"`
}

// Location wraps a physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation names the file, as a URI relative to the repo root.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is the position within the artifact.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Suppression records why a result does not fail the run. Kind "inSource"
// is the //sammy:<key> comment.
type Suppression struct {
	Kind          string `json:"kind"` // inSource | external
	Justification string `json:"justification,omitempty"`
}

// New builds a single-run log whose rules are the given analyzers, in
// order. The analyzer's suppression key rides in rule properties so a SARIF
// consumer can render the audit instruction next to the finding.
func New(toolName string, analyzers []*analysis.Analyzer) *Log {
	run := &Run{
		Tool: Tool{Driver: Driver{
			Name:  toolName,
			Rules: make([]Rule, 0, len(analyzers)),
		}},
		Results:   []*Result{},
		ruleIndex: make(map[string]int, len(analyzers)),
	}
	for i, a := range analyzers {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, Rule{
			ID:               a.Name,
			ShortDescription: Message{Text: a.Doc},
			Properties: map[string]any{
				"suppressKey": "sammy:" + a.SuppressKey,
			},
		})
		run.ruleIndex[a.Name] = i
	}
	return &Log{Schema: SchemaURI, Version: Version, Runs: []*Run{run}}
}

// Add appends one result to the log's run. level is "error" for failing
// findings and "note" for suppressed ones; justification (the text after
// //sammy:<key>:) is recorded when the site is suppressed.
func (l *Log) Add(ruleID, level, message, uri string, line, col int, suppressed bool, justification string) error {
	run := l.Runs[0]
	idx, ok := run.ruleIndex[ruleID]
	if !ok {
		return fmt.Errorf("sarif: result for unknown rule %q", ruleID)
	}
	r := &Result{
		RuleID:    ruleID,
		RuleIndex: idx,
		Level:     level,
		Message:   Message{Text: message},
		Locations: []Location{{PhysicalLocation: PhysicalLocation{
			ArtifactLocation: ArtifactLocation{URI: uri},
			Region:           Region{StartLine: line, StartColumn: col},
		}}},
	}
	if suppressed {
		r.Suppressions = []Suppression{{Kind: "inSource", Justification: justification}}
	}
	run.Results = append(run.Results, r)
	return nil
}

// Validate enforces the SARIF 2.1.0 required fields on the subset this
// package emits, so a writer bug fails the producing run instead of the
// consuming service.
func (l *Log) Validate() error {
	if l.Version != Version {
		return fmt.Errorf("sarif: version = %q, want %q", l.Version, Version)
	}
	if l.Schema == "" {
		return fmt.Errorf("sarif: missing $schema")
	}
	if len(l.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for _, run := range l.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: run has no tool.driver.name")
		}
		if run.Results == nil {
			return fmt.Errorf("sarif: run.results must be present (may be empty)")
		}
		ruleIDs := make(map[string]int, len(run.Tool.Driver.Rules))
		for i, rule := range run.Tool.Driver.Rules {
			if rule.ID == "" {
				return fmt.Errorf("sarif: rule %d has no id", i)
			}
			ruleIDs[rule.ID] = i
		}
		for i, r := range run.Results {
			if r.Message.Text == "" {
				return fmt.Errorf("sarif: result %d has no message.text", i)
			}
			idx, known := ruleIDs[r.RuleID]
			if r.RuleID == "" || !known {
				return fmt.Errorf("sarif: result %d references unknown rule %q", i, r.RuleID)
			}
			if r.RuleIndex != idx {
				return fmt.Errorf("sarif: result %d ruleIndex %d does not match rule %q at %d", i, r.RuleIndex, r.RuleID, idx)
			}
			switch r.Level {
			case "error", "warning", "note", "none":
			default:
				return fmt.Errorf("sarif: result %d has invalid level %q", i, r.Level)
			}
			if len(r.Locations) == 0 {
				return fmt.Errorf("sarif: result %d has no locations", i)
			}
			for _, loc := range r.Locations {
				if loc.PhysicalLocation.ArtifactLocation.URI == "" {
					return fmt.Errorf("sarif: result %d has no artifact URI", i)
				}
				if loc.PhysicalLocation.Region.StartLine < 1 {
					return fmt.Errorf("sarif: result %d has startLine %d", i, loc.PhysicalLocation.Region.StartLine)
				}
			}
			for _, s := range r.Suppressions {
				if s.Kind != "inSource" && s.Kind != "external" {
					return fmt.Errorf("sarif: result %d has invalid suppression kind %q", i, s.Kind)
				}
			}
		}
	}
	return nil
}

// WriteFile validates the log and writes it as indented JSON.
func (l *Log) WriteFile(path string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
