package sarif_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/sarif"
)

func testAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		{Name: "alpha", Doc: "checks alpha things", SuppressKey: "alpha-ok"},
		{Name: "beta", Doc: "checks beta things", SuppressKey: "beta"},
	}
}

// TestRoundTrip writes a log with failing and suppressed results and checks
// that the decoded document still validates and carries every SARIF 2.1.0
// required field.
func TestRoundTrip(t *testing.T) {
	log := sarif.New("sammy-vet", testAnalyzers())
	if err := log.Add("alpha", "error", "alpha finding", "internal/x/x.go", 10, 3, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := log.Add("beta", "note", "beta finding", "cmd/y/main.go", 42, 1, true, "audited: reason"); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "out.sarif")
	if err := log.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Decode into the typed form: must still validate.
	var back sarif.Log
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped log does not validate: %v", err)
	}

	// Decode into a generic map: spot-check the spec's required fields by
	// their exact JSON names, independent of the Go struct tags.
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", doc["version"])
	}
	if _, ok := doc["$schema"].(string); !ok {
		t.Error("missing $schema")
	}
	runs := doc["runs"].([]any)
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "sammy-vet" {
		t.Errorf("driver.name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	if id := rules[0].(map[string]any)["id"]; id != "alpha" {
		t.Errorf("rules[0].id = %v", id)
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	r0 := results[0].(map[string]any)
	if r0["ruleId"] != "alpha" || r0["level"] != "error" {
		t.Errorf("results[0] = %v", r0)
	}
	loc := r0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/x/x.go" {
		t.Errorf("uri = %v", uri)
	}
	if line := loc["region"].(map[string]any)["startLine"]; line != float64(10) {
		t.Errorf("startLine = %v", line)
	}
	r1 := results[1].(map[string]any)
	sup := r1["suppressions"].([]any)[0].(map[string]any)
	if sup["kind"] != "inSource" {
		t.Errorf("suppression.kind = %v", sup["kind"])
	}
	if sup["justification"] != "audited: reason" {
		t.Errorf("suppression.justification = %v", sup["justification"])
	}
	if _, hasSup := r0["suppressions"]; hasSup {
		t.Error("failing result must not carry suppressions")
	}
}

// TestValidateRejects pins the validator's required-field checks.
func TestValidateRejects(t *testing.T) {
	mk := func() *sarif.Log { return sarif.New("sammy-vet", testAnalyzers()) }

	log := mk()
	if err := log.Add("gamma", "error", "x", "f.go", 1, 1, false, ""); err == nil {
		t.Error("Add with unknown rule must fail")
	}

	log = mk()
	log.Add("alpha", "fatal", "x", "f.go", 1, 1, false, "")
	if err := log.Validate(); err == nil {
		t.Error("invalid level must not validate")
	}

	log = mk()
	log.Add("alpha", "error", "x", "f.go", 0, 1, false, "")
	if err := log.Validate(); err == nil {
		t.Error("startLine 0 must not validate")
	}

	log = mk()
	log.Add("alpha", "error", "", "f.go", 1, 1, false, "")
	if err := log.Validate(); err == nil {
		t.Error("empty message must not validate")
	}

	log = mk()
	log.Version = "2.0.0"
	if err := log.Validate(); err == nil {
		t.Error("non-2.1.0 version must not validate")
	}

	if err := mk().Validate(); err != nil {
		t.Errorf("empty result set must validate (clean runs still upload): %v", err)
	}
}
