// Package spanend enforces the span lifecycle of internal/obs/trace: every
// span opened with Start/StartAt/StartChild/StartChildAt/StartRemote/
// StartRemoteAt must be closed with End or EndAt, or handed off to an
// owner that closes it. A span that is never ended silently vanishes from
// the trace (records are emitted at End), so a forgotten End turns into a
// hole in the timeline rather than an error — exactly the kind of drift a
// vet pass catches earlier than a human reading Perfetto output.
//
// The check is flow-insensitive and object-based: for each span-creating
// call in a function, the analyzer accepts
//
//   - a chained end: tr.Start("k", "").SetAttr("a", 1).End();
//   - assignment to a variable on which End/EndAt is called anywhere in
//     the enclosing function, closures and defers included;
//   - any escape — stored into a field, passed as an argument, returned,
//     sent, or otherwise used as a value — since ownership then moves to
//     code the analyzer cannot see.
//
// What it flags is a span result that is discarded (a bare expression
// statement or blank assign) or parked in a local that is only ever used
// as a receiver without an End. Test files are skipped: they routinely
// build half-open spans on purpose. Audited exceptions carry
// //sammy:spanend-ok.
package spanend

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the spanend pass.
var Analyzer = &analysis.Analyzer{
	Name:        "spanend",
	Doc:         "require every obs/trace span Start* to reach End/EndAt or escape to an owner",
	SuppressKey: "spanend-ok",
	Run:         run,
}

// spanStarters are the *Span-producing methods of obs/trace.
var spanStarters = map[string]bool{
	"Start": true, "StartAt": true,
	"StartChild": true, "StartChildAt": true,
	"StartRemote": true, "StartRemoteAt": true,
}

// chainable are the *Span methods that return their receiver, so an End at
// the end of the chain closes the span the chain began with.
var chainable = map[string]bool{"SetAttr": true, "SetStr": true}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "obs/trace") {
		return nil // the tracer's own machinery
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isSpanStart reports whether call creates a span.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || !spanStarters[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "obs/trace")
}

// use classifies how a span-creating call's result is consumed.
type use int

const (
	useDiscarded use = iota // bare statement or blank assign: never ended
	useEnded                // chained .End()/.EndAt()
	useVar                  // bound to a local; needs an End or escape later
	useEscaped              // argument, field, return, ...: owner elsewhere
)

// checkFunc applies the invariant to one function declaration.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: classify every span-start call by its syntactic context,
	// collecting the variables that hold pending spans.
	type pending struct {
		call *ast.CallExpr
		obj  types.Object // nil for discarded results
	}
	var open []pending
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanStart(info, call) {
			return true
		}
		switch u, obj := classify(info, stack); u {
		case useDiscarded:
			open = append(open, pending{call: call})
		case useVar:
			open = append(open, pending{call: call, obj: obj})
		}
		return true
	})
	if len(open) == 0 {
		return
	}

	// Pass 2: find, anywhere in the function (closures and defers
	// included), the variables that are ended or escape.
	ended := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	tracked := map[types.Object]bool{}
	for _, p := range open {
		if p.obj != nil {
			tracked[p.obj] = true
		}
	}
	stack = stack[:0]
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !tracked[obj] {
			return true
		}
		switch identUse(info, stack) {
		case useEnded:
			ended[obj] = true
		case useEscaped:
			escaped[obj] = true
		}
		return true
	})

	for _, p := range open {
		if p.obj != nil && (ended[p.obj] || escaped[p.obj]) {
			continue
		}
		what := "discarded and"
		if p.obj != nil {
			what = "held in " + p.obj.Name() + " but"
		}
		pass.Reportf(p.call.Pos(),
			"span started here is %s never ended: call End/EndAt on every path, or hand the span off to an owner that does",
			what)
	}
}

// classify walks outward from the span-start call at the top of stack,
// following SetAttr/SetStr chains, and reports how the result is used.
func classify(info *types.Info, stack []ast.Node) (use, types.Object) {
	cur := stack[len(stack)-1].(ast.Node)
	i := len(stack) - 2
	for i >= 0 {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			i--
		case *ast.SelectorExpr:
			// cur is the receiver of a method call: chain or end?
			if i > 0 {
				if gp, ok := stack[i-1].(*ast.CallExpr); ok && gp.Fun == p {
					switch {
					case p.Sel.Name == "End" || p.Sel.Name == "EndAt":
						return useEnded, nil
					case chainable[p.Sel.Name]:
						cur = gp
						i -= 2
						continue
					}
				}
			}
			// Some other method or field on the result: conservatively an
			// escape (the result is being used as a value).
			return useEscaped, nil
		case *ast.AssignStmt:
			return classifyAssign(info, p, cur)
		case *ast.ValueSpec:
			for j, v := range p.Values {
				if v == cur && j < len(p.Names) {
					if p.Names[j].Name == "_" {
						return useDiscarded, nil
					}
					return useVar, info.Defs[p.Names[j]]
				}
			}
			return useEscaped, nil
		case *ast.ExprStmt:
			return useDiscarded, nil
		default:
			// Argument, return value, composite literal, send, index,
			// comparison, ...: the span escapes to other code.
			return useEscaped, nil
		}
	}
	return useEscaped, nil
}

// classifyAssign resolves which side of an assignment cur feeds.
func classifyAssign(info *types.Info, as *ast.AssignStmt, cur ast.Node) (use, types.Object) {
	for j, r := range as.Rhs {
		if r != cur {
			continue
		}
		if len(as.Lhs) != len(as.Rhs) {
			return useEscaped, nil
		}
		id, ok := ast.Unparen(as.Lhs[j]).(*ast.Ident)
		if !ok {
			return useEscaped, nil // field or index store: owner elsewhere
		}
		if id.Name == "_" {
			return useDiscarded, nil
		}
		if obj := info.Defs[id]; obj != nil {
			return useVar, obj
		}
		if obj := info.Uses[id]; obj != nil {
			return useVar, obj
		}
	}
	return useEscaped, nil
}

// identUse classifies one use of a tracked span variable: the receiver of
// an End (directly or through a SetAttr/SetStr chain) ends it; any use as
// a value other than a plain method-receiver position is an escape.
func identUse(info *types.Info, stack []ast.Node) use {
	cur := stack[len(stack)-1].(ast.Node)
	i := len(stack) - 2
	for i >= 0 {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			i--
		case *ast.SelectorExpr:
			if p.X != cur {
				return useVar // the ident is the field name, not the receiver
			}
			if i > 0 {
				if gp, ok := stack[i-1].(*ast.CallExpr); ok && gp.Fun == p {
					switch {
					case p.Sel.Name == "End" || p.Sel.Name == "EndAt":
						return useEnded
					case chainable[p.Sel.Name]:
						cur = gp
						i -= 2
						continue
					}
				}
			}
			return useVar // other method call on the span: neither ends nor escapes
		case *ast.ExprStmt:
			return useVar // chain result discarded: a plain use, not an escape
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == cur {
					return useVar // (re)definition, not a use
				}
			}
			return useEscaped // span assigned onward: owner elsewhere
		default:
			return useEscaped
		}
	}
	return useEscaped
}
