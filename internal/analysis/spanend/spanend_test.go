package spanend_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	diags := antest.Run(t, spanend.Analyzer, "se/a")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:spanend-ok fixture site to be seen and suppressed")
	}
}
