// Package a exercises the spanend analyzer: every accepted span
// lifecycle shape, the flagged ones, and a suppression site.
package a

import (
	"time"

	trace "se/obs/trace"
)

type holder struct{ sp *trace.Span }

func sink(*trace.Span) {}

// fine runs through every lifecycle shape the analyzer accepts.
func fine(tr *trace.Trace, h *holder) *trace.Span {
	s := tr.Start("player.session", "u1")
	defer s.End()

	c := s.StartChild("player.chunk", "")
	c.SetAttr("index", 3).End()

	// Chained end straight off the start call.
	tr.StartAt(time.Second, "abr.decide", "").SetStr("arm", "sammy").EndAt(2 * time.Second)

	// Plain (non-:=) assignment into a declared local.
	var d *trace.Span
	d = s.StartChildAt(time.Second, "player.idle", "")
	d.EndAt(3 * time.Second)

	h.sp = tr.Start("cdn.serve", "")    // field store: owner elsewhere
	sink(tr.Start("cdn.fetch", ""))     // argument: owner elsewhere
	e := tr.Start("cdn.attempt", "")
	sink(e)                             // local escapes via argument
	return tr.Start("overload.admission", "") // returned: the caller ends it
}

// branchy ends on one branch only: the check is flow-insensitive, an
// End/EndAt anywhere in the function satisfies it.
func branchy(tr *trace.Trace, ok bool) {
	s := tr.Start("tcp.fetch", "")
	if ok {
		s.End()
	} else {
		s.EndAt(time.Second)
	}
}

// closure ends the span from a scheduled callback, the simulator's
// normal shape for paced-idle and stall spans.
func closure(tr *trace.Trace, schedule func(func())) {
	s := tr.Start("netmodel.download", "")
	schedule(func() { s.EndAt(4 * time.Second) })
}

func bad(t *trace.Tracer, tr *trace.Trace) {
	tr.Start("player.stall", "")      // want `span started here is discarded and never ended`
	s := tr.Start("bwest.sample", "") // want `span started here is held in s but never ended`
	s.SetAttr("mbps", 12)
	_ = t.StartRemote("sess", 7, "cdn.serve", "") // want `discarded and never ended`
}

func suppressed(tr *trace.Trace) *trace.Trace {
	tr.Start("player.session", "eternal") //sammy:spanend-ok: span deliberately left open for the process lifetime
	return tr
}
