// Package trace is a stub of repro/internal/obs/trace for the spanend
// fixtures: same method names and shapes, no behavior. The analyzer
// matches the defining package by the "obs/trace" import-path suffix, so
// this stub (path "se/obs/trace") exercises the same code path as the
// real tree.
package trace

import "time"

// Tracer is the stub collector.
type Tracer struct{}

// Trace is one stub session timeline.
type Trace struct{}

// Span is one stub span.
type Span struct{}

// New returns a stub tracer.
func New() *Tracer { return &Tracer{} }

// Session returns the stub trace for id.
func (t *Tracer) Session(id string) *Trace { return &Trace{} }

// StartRemote opens a span parented in another process's trace.
func (t *Tracer) StartRemote(id string, parent uint64, kind, name string) *Span { return &Span{} }

// Start opens a root span at wall-clock now.
func (tr *Trace) Start(kind, name string) *Span { return &Span{} }

// StartAt opens a root span at a sim-clock instant.
func (tr *Trace) StartAt(at time.Duration, kind, name string) *Span { return &Span{} }

// StartChild opens a child span at wall-clock now.
func (s *Span) StartChild(kind, name string) *Span { return &Span{} }

// StartChildAt opens a child span at a sim-clock instant.
func (s *Span) StartChildAt(at time.Duration, kind, name string) *Span { return &Span{} }

// SetAttr attaches a numeric attribute, returning the receiver.
func (s *Span) SetAttr(key string, v float64) *Span { return s }

// SetStr attaches a string attribute, returning the receiver.
func (s *Span) SetStr(key, val string) *Span { return s }

// AnnotateAt records an instant event inside the span.
func (s *Span) AnnotateAt(at time.Duration, name string, v float64) {}

// End closes the span at wall-clock now.
func (s *Span) End() {}

// EndAt closes the span at a sim-clock instant.
func (s *Span) EndAt(at time.Duration) {}
