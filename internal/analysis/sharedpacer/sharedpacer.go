// Package sharedpacer forbids per-stream timer primitives on the serving
// path. The shared timer-wheel engine (internal/pacing.Engine) exists so
// that a CDN edge pacing tens of thousands of concurrent responses arms
// O(1) timers per wheel tick instead of one runtime timer per stream —
// the perf result the loadgen/bench suites defend. A stray time.Sleep or
// time.NewTimer in the paced write path silently reintroduces the
// per-stream wakeup regime the engine was built to retire.
//
// Inside the pacing packages (import-path base "cdn" or "pacing") the
// analyzer flags every call that arms a runtime timer or parks the calling
// goroutine on the wall clock:
//
//	time.Sleep, time.NewTimer, time.After, time.Tick, time.AfterFunc,
//	time.NewTicker
//
// Streams must instead register with the engine and park on
// Stream.Await, which multiplexes all deadlines onto the wheel runner's
// single resettable timer. Audited exceptions — the wheel runner itself,
// and control-plane timers that are per-connection rather than per-paced-
// write (retry backoff, TTFB watchdogs, session idle gaps) — carry a
// //sammy:sharedpacer-ok comment with a justification.
//
// Test files are skipped: tests legitimately sleep to provoke races and
// to drive real-time pacing assertions.
package sharedpacer

import (
	"go/ast"

	"repro/internal/analysis"
)

// PacedPkgs names the packages (by import-path base) whose serving path
// must multiplex timers through the shared engine.
var PacedPkgs = map[string]bool{
	"cdn":    true,
	"pacing": true,
}

// timerFuncs are the time-package calls that arm a per-caller runtime
// timer (or park the goroutine until one fires).
var timerFuncs = map[string]bool{
	"Sleep":     true,
	"NewTimer":  true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTicker": true,
}

// Analyzer is the sharedpacer pass.
var Analyzer = &analysis.Analyzer{
	Name:        "sharedpacer",
	Doc:         "forbid per-stream time.Sleep/timer primitives in the pacing packages; deadlines go through the shared timer-wheel engine",
	SuppressKey: "sharedpacer-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if !PacedPkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if timerFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s arms a per-caller timer in pacing package %s (park on the shared engine via Stream.Await instead)",
					fn.Name(), pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
