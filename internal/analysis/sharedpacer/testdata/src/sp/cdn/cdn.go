// Package cdn is a sharedpacer fixture: its import-path base is in the
// paced set, so every per-caller timer primitive below must be flagged —
// except the audited suppression.
package cdn

import "time"

func sleepPace(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep arms a per-caller timer`
}

func perStreamTimer(d time.Duration) {
	t := time.NewTimer(d) // want `time\.NewTimer arms a per-caller timer`
	<-t.C
	<-time.After(d) // want `time\.After arms a per-caller timer`
}

func tickers(d time.Duration) *time.Ticker {
	_ = time.Tick(d)             // want `time\.Tick arms a per-caller timer`
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc arms a per-caller timer`
	return time.NewTicker(d)     // want `time\.NewTicker arms a per-caller timer`
}

func watchdogAudited(d time.Duration, cancel func()) *time.Timer {
	//sammy:sharedpacer-ok: per-connection TTFB watchdog, not per-paced-write
	return time.AfterFunc(d, cancel)
}

func clockReadsOK(start time.Time) time.Duration {
	// Reading the clock arms nothing; only parking primitives are flagged.
	return time.Since(start)
}
