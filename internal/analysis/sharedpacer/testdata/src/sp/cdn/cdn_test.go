package cdn

import "time"

// Test files are exempt: real-time pacing assertions legitimately sleep.
func sleepInTest() {
	time.Sleep(time.Millisecond)
}
