// Package free is a sharedpacer fixture outside the paced set: timer
// primitives here must NOT be flagged.
package free

import "time"

func Backoff(d time.Duration) {
	time.Sleep(d)
	<-time.After(d)
}
