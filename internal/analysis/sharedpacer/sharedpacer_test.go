package sharedpacer_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/sharedpacer"
)

func TestSharedPacer(t *testing.T) {
	diags := antest.Run(t, sharedpacer.Analyzer, "sp/cdn", "sp/free")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want exactly the //sammy:sharedpacer-ok watchdog site", suppressed)
	}
}
