// Package a exercises the packetownership analyzer: pool leaks,
// use-after-release, and the blessed alloc-fill-send pattern.
package a

import "pkt/sim"

var stash *sim.Packet

func leak(s *sim.Simulator) {
	p := s.AllocPacket() // want `never reaches Send or FreePacket`
	p.Flow = 1
}

func discard(s *sim.Simulator) {
	s.AllocPacket() // want `result of AllocPacket discarded`
}

func blank(s *sim.Simulator) {
	_ = s.AllocPacket() // want `result of AllocPacket discarded`
}

func sendOK(s *sim.Simulator, l *sim.Link) {
	p := s.AllocPacket()
	p.Flow = 2
	l.Send(p)
}

func senderIfaceOK(s *sim.Simulator, snd sim.Sender) {
	p := s.AllocPacket()
	snd.Send(p)
}

func freeOK(s *sim.Simulator) {
	p := s.AllocPacket()
	s.FreePacket(p)
}

func helperOK(s *sim.Simulator) {
	p := s.AllocPacket()
	forward(p) // ownership transferred to the callee
}

func forward(p *sim.Packet) {}

func escapeOK(s *sim.Simulator) {
	p := s.AllocPacket()
	stash = p // escapes; lifetime is the store's responsibility
}

func useAfterFree(s *sim.Simulator) int {
	p := s.AllocPacket()
	s.FreePacket(p)
	return p.Flow // want `use of p after FreePacket`
}

func useAfterSend(s *sim.Simulator, l *sim.Link) int {
	p := s.AllocPacket()
	l.Send(p)
	return p.Flow // want `use of p after Send`
}

func doubleFree(s *sim.Simulator) {
	p := s.AllocPacket()
	s.FreePacket(p)
	s.FreePacket(p) // want `use of p after FreePacket`
}

func rebindOK(s *sim.Simulator, l *sim.Link) {
	p := s.AllocPacket()
	l.Send(p)
	p = s.AllocPacket() // fresh packet: released state ends
	l.Send(p)
}

func auditedLeak(s *sim.Simulator) {
	p := s.AllocPacket() //sammy:packet-ok: fixture demonstrating an audited exception
	_ = p.Flow
}
