// Package sim is a structural stub of repro/internal/sim for the
// packetownership fixtures: the analyzer matches by package-path base and
// type names, so these shapes exercise the same code paths as the real
// tree.
package sim

type Packet struct {
	Flow int
	Size int
}

type Simulator struct{ free []*Packet }

func (s *Simulator) AllocPacket() *Packet { return &Packet{} }
func (s *Simulator) FreePacket(p *Packet) {}

type Sender interface{ Send(p *Packet) bool }

type Link struct{}

func (l *Link) Send(p *Packet) bool { return true }
