package packetownership_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/packetownership"
)

func TestPacketOwnership(t *testing.T) {
	diags := antest.Run(t, packetownership.Analyzer, "pkt/a")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:packet-ok fixture site to be seen and suppressed")
	}
}
