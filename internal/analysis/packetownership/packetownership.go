// Package packetownership enforces the linear ownership protocol of the
// allocation-free event core's packet pool (DESIGN.md §9): every packet
// obtained from Simulator.AllocPacket must be handed to a Sender.Send or
// returned via Simulator.FreePacket, and must not be touched after either
// transfer — the link layer recycles it, so a retained pointer aliases a
// future packet.
//
// The analyzer is function-local and syntactic:
//
//   - an AllocPacket result that is discarded, or never reaches a
//     Send/FreePacket call (nor escapes into another call, return value,
//     field, container or channel), is reported as a pool leak;
//   - within a statement block, any use of the packet variable after the
//     Send/FreePacket that transferred it away is reported as
//     use-after-release.
//
// Package sim itself — the pool and link internals, which legitimately
// own packets across these boundaries — is exempt. Audited exceptions
// elsewhere carry //sammy:packet-ok with a justification.
package packetownership

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the packetownership pass.
var Analyzer = &analysis.Analyzer{
	Name:        "packetownership",
	Doc:         "enforce linear Send/FreePacket ownership of Simulator.AllocPacket results",
	SuppressKey: "packet-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.Pkg.Path()) == "sim" {
		return nil // pool and link internals own packets by design
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// isAllocCall reports whether call is (*sim.Simulator).AllocPacket.
func isAllocCall(info *types.Info, call *ast.CallExpr) bool {
	return analysis.IsPkgFunc(info, call, "sim", "AllocPacket")
}

// releasedObj returns the packet variable transferred away by call:
// the argument of Simulator.FreePacket or of a Send method taking a
// *sim.Packet. The second result names the releasing call.
func releasedObj(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || len(call.Args) != 1 {
		return nil, ""
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := info.Uses[arg]
	if obj == nil {
		return nil, ""
	}
	switch {
	case fn.Name() == "FreePacket" && analysis.ObjPkgBase(fn) == "sim":
		return obj, "FreePacket"
	case fn.Name() == "Send" && analysis.IsNamed(obj.Type(), "sim", "Packet"):
		return obj, "Send"
	}
	return nil, ""
}

// checkFunc runs both ownership checks over one function body. Nested
// function literals are analyzed separately by run's outer walk, but their
// statements still count as uses/consumers for the enclosing function's
// packets (a closure may legitimately free a captured packet later).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// --- leak check: every AllocPacket result must be consumed ----------
	type allocVar struct {
		obj types.Object
		pos ast.Expr // the alloc call, for reporting
	}
	var allocs []allocVar
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isAllocCall(info, call) {
				pass.Reportf(call.Pos(), "result of AllocPacket discarded: the packet leaks from the pool (Send or FreePacket it)")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isAllocCall(info, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "result of AllocPacket discarded: the packet leaks from the pool (Send or FreePacket it)")
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				allocs = append(allocs, allocVar{obj: obj, pos: call})
			}
		}
		return true
	})
	for _, a := range allocs {
		if !consumed(info, body, a.obj) {
			pass.Reportf(a.pos.Pos(),
				"packet %s from AllocPacket never reaches Send or FreePacket in this function and does not escape: it leaks from the pool",
				a.obj.Name())
		}
	}

	// --- use-after-release: straight-line order within each block -------
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		released := map[types.Object]string{}
		for _, stmt := range block.List {
			// A use of a previously released packet in this statement?
			for obj, how := range released {
				if rebinds(info, stmt, obj) {
					delete(released, obj)
					continue
				}
				if pos, used := usePos(info, stmt, obj); used {
					pass.Reportf(pos,
						"use of %s after %s released it back to the pool (the link layer may already have recycled it)",
						obj.Name(), how)
				}
			}
			// Does this statement release a packet?
			ast.Inspect(stmt, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if obj, how := releasedObj(info, call); obj != nil {
						released[obj] = how
					}
				}
				return true
			})
		}
		return true
	})
}

// consumed reports whether obj (a packet variable) is transferred away
// anywhere in body: passed to any call, returned, stored into a field,
// container or channel, or aliased by assignment.
func consumed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	usesObj := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				// Only a use of the pointer value itself counts; p.Field
				// on the left of a selector is still just p's value, so
				// any appearance qualifies here — the caller restricts
				// the contexts that reach us.
				hit = true
			}
			return !hit
		})
		return hit
	}
	isBare := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesObj(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObj(n.Value) {
				found = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if usesObj(el) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// p aliased or stored: q := p, x.f = p, m[k] = p.
			for i, rhs := range n.Rhs {
				if !isBare(rhs) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				found = true
			}
		}
		return !found
	})
	return found
}

// rebinds reports whether stmt assigns a fresh value to obj (p = ... or
// p := ...), which ends the released state of the old value.
func rebinds(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	re := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if info.Uses[id] == obj || info.Defs[id] == obj {
					re = true
				}
			}
		}
		return !re
	})
	return re
}

// usePos finds a use of obj inside stmt.
func usePos(info *types.Info, stmt ast.Stmt, obj types.Object) (pos token.Pos, used bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			pos, used = id.Pos(), true
		}
		return !used
	})
	return pos, used
}
