package obsguard_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/obsguard"
)

func TestObsGuard(t *testing.T) {
	diags := antest.Run(t, obsguard.Analyzer, "og/a")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:obsguard-ok fixture site to be seen and suppressed")
	}
}
