// Package obsguard enforces the nil-guard idiom for obs metrics structs
// (DESIGN.md §7): instrumented code holds a possibly-nil pointer to a
// struct of obs handles (*sim.Metrics, *tcp.Metrics, *fault.ChaosMetrics,
// ...) — nil means instrumentation is off — and must check the pointer
// before touching its fields:
//
//	if m := c.metrics; m != nil {
//		m.SegmentsSent.Inc()
//	}
//
// The individual obs types (*obs.Counter, *obs.Gauge, ...) are nil-safe,
// but the enclosing struct pointer is not: m.SegmentsSent panics when m is
// nil. The analyzer flags field accesses on a metrics-struct pointer that
// are not dominated by a nil guard of the same expression (or of the local
// it was copied into). Function parameters and method receivers are
// exempt — guarding is the caller's contract, as in the metricsField
// helper. Audited exceptions carry //sammy:obsguard-ok.
package obsguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the obsguard pass.
var Analyzer = &analysis.Analyzer{
	Name:        "obsguard",
	Doc:         "require nil guards before field access on possibly-nil obs metrics structs",
	SuppressKey: "obsguard-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.Pkg.Path()) == "obs" {
		return nil // the obs package owns its internals
	}
	for _, f := range pass.Files {
		// Test code builds its metrics from a registry it just created, so
		// the structs are provably non-nil and a miss would fail the test
		// loudly anyway; guarding there is pure ceremony.
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, exempt: map[types.Object]bool{}}
			c.addFieldListObjs(fd.Recv)
			c.addFieldListObjs(fd.Type.Params)
			c.stmts(fd.Body.List, guards{})
		}
	}
	return nil
}

// guards is the set of expressions (rendered with types.ExprString) proven
// non-nil on the current path.
type guards map[string]bool

func (g guards) clone() guards {
	out := make(guards, len(g))
	for k := range g {
		out[k] = true
	}
	return out
}

type checker struct {
	pass   *analysis.Pass
	exempt map[types.Object]bool // params and receivers: caller-guarded
}

// addFieldListObjs marks every object declared in fl (receiver or
// parameter list) as caller-guarded.
func (c *checker) addFieldListObjs(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				c.exempt[obj] = true
			}
		}
	}
}

// stmts walks a statement list, accumulating early-return guards:
// after `if m == nil { return }`, m is non-nil for the rest of the list.
func (c *checker) stmts(list []ast.Stmt, g guards) {
	g = g.clone()
	for _, stmt := range list {
		c.stmt(stmt, g)
		if expr := earlyReturnGuard(stmt); expr != nil {
			g[types.ExprString(expr)] = true
		}
	}
}

// stmt dispatches one statement, threading guard knowledge through if/else
// structure and checking every embedded expression.
func (c *checker) stmt(s ast.Stmt, g guards) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, g)
		}
		c.exprs(s.Cond, g)
		then := g.clone()
		for _, e := range nonNilConjuncts(s.Cond) {
			then[types.ExprString(e)] = true
		}
		c.stmts(s.Body.List, then)
		if s.Else != nil {
			els := g.clone()
			if e := isNilCompare(s.Cond); e != nil {
				els[types.ExprString(e)] = true // if x == nil {...} else { x is non-nil }
			}
			c.stmt(s.Else, els)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, g)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, g)
		}
		if s.Cond != nil {
			c.exprs(s.Cond, g)
		}
		if s.Post != nil {
			c.stmt(s.Post, g)
		}
		c.stmts(s.Body.List, g)
	case *ast.RangeStmt:
		c.exprs(s.X, g)
		c.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, g)
		}
		if s.Tag != nil {
			c.exprs(s.Tag, g)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.exprs(e, g)
				}
				c.stmts(cc.Body, g)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, g)
		}
		c.stmt(s.Assign, g)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, g)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm, g)
				}
				c.stmts(cc.Body, g)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, g)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				sub := &checker{pass: c.pass, exempt: c.exempt}
				sub.addFieldListObjs(n.Type.Params)
				sub.stmts(n.Body.List, g)
				return false
			case ast.Expr:
				c.checkSelector(n, g)
			}
			return true
		})
	}
}

// exprs checks every selector in an expression tree (used for conditions
// and other expressions embedded in control statements).
func (c *checker) exprs(e ast.Expr, g guards) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			sub := &checker{pass: c.pass, exempt: c.exempt}
			sub.addFieldListObjs(fl.Type.Params)
			sub.stmts(fl.Body.List, g)
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			c.checkSelector(expr, g)
		}
		return true
	})
}

// checkSelector flags sel.F when sel is a possibly-nil metrics-struct
// pointer not covered by a guard.
func (c *checker) checkSelector(e ast.Expr, g guards) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := c.pass.TypesInfo
	// Method values/calls are the callee's contract (nil-safe receivers).
	if s, ok := info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return
	}
	baseTV, ok := info.Types[sel.X]
	if !ok || !isMetricsPtr(baseTV.Type) {
		return
	}
	if g[types.ExprString(sel.X)] {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && c.exempt[obj] {
			return
		}
	}
	// A call in the base (helper-returned handle) is out of scope.
	if containsCall(sel.X) {
		return
	}
	n := analysis.NamedType(baseTV.Type)
	c.pass.Reportf(sel.Sel.Pos(),
		"field %s accessed on possibly-nil *%s without a nil guard (metrics structs are nil when instrumentation is off; use `if m := %s; m != nil { ... }`)",
		sel.Sel.Name, n.Obj().Name(), types.ExprString(sel.X))
}

// isMetricsPtr reports whether t is a pointer to a named struct holding at
// least one obs handle field (the shape of every metrics struct in the
// repo).
func isMetricsPtr(t types.Type) bool {
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return false
	}
	n := analysis.NamedType(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		fn := analysis.NamedType(st.Field(i).Type())
		if fn != nil && analysis.ObjPkgBase(fn.Obj()) == "obs" {
			return true
		}
	}
	return false
}

// nonNilConjuncts extracts the expressions proven non-nil when cond is
// true: `x != nil`, possibly joined by &&.
func nonNilConjuncts(cond ast.Expr) []ast.Expr {
	var out []ast.Expr
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch e.Op.String() {
			case "&&":
				walk(e.X)
				walk(e.Y)
			case "!=":
				if isNilIdent(e.Y) {
					out = append(out, e.X)
				} else if isNilIdent(e.X) {
					out = append(out, e.Y)
				}
			}
		}
	}
	walk(cond)
	return out
}

// isNilCompare returns x when cond is exactly `x == nil` (or `nil == x`).
func isNilCompare(cond ast.Expr) ast.Expr {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return nil
	}
	if isNilIdent(be.Y) {
		return be.X
	}
	if isNilIdent(be.X) {
		return be.Y
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// earlyReturnGuard recognizes `if x == nil { return/panic/continue/break }`
// (no else): x is non-nil for the remainder of the enclosing block.
func earlyReturnGuard(s ast.Stmt) ast.Expr {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return nil
	}
	expr := isNilCompare(ifs.Cond)
	if expr == nil {
		return nil
	}
	last := ifs.Body.List[len(ifs.Body.List)-1]
	switch last := last.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return expr
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return expr
			}
		}
	}
	return nil
}

// containsCall reports whether e contains any call expression.
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
