// Package obs is a structural stub of repro/internal/obs for the obsguard
// fixtures: nil-safe handle types that metrics structs point at.
package obs

type Counter struct{ v int64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

type Recorder struct{ n int }

func (r *Recorder) Record(typ string) {
	if r == nil {
		return
	}
	r.n++
}
