// Package a exercises the obsguard analyzer: unguarded field access on
// possibly-nil metrics structs versus the blessed nil-guard idioms.
package a

import "og/obs"

type Metrics struct {
	Sent    *obs.Counter
	Dropped *obs.Counter
	Depth   *obs.Gauge
	Rec     *obs.Recorder
}

type Conn struct {
	metrics *Metrics
}

func (c *Conn) unguarded() {
	c.metrics.Sent.Inc() // want `field Sent accessed on possibly-nil \*Metrics`
}

func (c *Conn) aliasUnguarded() {
	m := c.metrics
	m.Sent.Inc() // want `field Sent accessed on possibly-nil \*Metrics`
}

func (c *Conn) guardedIf() {
	if m := c.metrics; m != nil {
		m.Sent.Inc()
		m.Rec.Record("x")
	}
}

func (c *Conn) guardedEarlyReturn() {
	m := c.metrics
	if m == nil {
		return
	}
	m.Dropped.Inc()
	for i := 0; i < 3; i++ {
		m.Depth.Set(float64(i))
	}
}

func (c *Conn) guardedDirect() {
	if c.metrics != nil {
		c.metrics.Sent.Inc()
	}
}

func (c *Conn) guardedElse() {
	if c.metrics == nil {
		noop()
	} else {
		c.metrics.Sent.Inc()
	}
}

func (c *Conn) guardedClosure() {
	if m := c.metrics; m != nil {
		func() { m.Dropped.Inc() }()
	}
}

func (c *Conn) halfGuarded() {
	if c.metrics != nil {
		c.metrics.Sent.Inc()
	}
	c.metrics.Dropped.Inc() // want `field Dropped accessed on possibly-nil \*Metrics`
}

// param: callers guard, as with the metricsField helper in internal/fault.
func param(m *Metrics) {
	m.Sent.Inc()
}

// method on the metrics struct itself: receiver is caller-guarded.
func (m *Metrics) bump() {
	m.Sent.Inc()
}

func (c *Conn) audited() {
	c.metrics.Sent.Inc() //sammy:obsguard-ok: constructor always installs metrics in this fixture
}

func noop() {}
