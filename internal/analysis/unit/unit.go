// Package unit implements the driver side of the (unpublished) `go vet
// -vettool` protocol for the sammy-vet suite.
//
// When cmd/go vets a package it invokes the tool three ways:
//
//  1. `tool -V=full` — a build-ID handshake used to key vet's result cache
//  2. `tool -flags` — a JSON description of the tool's flags
//  3. `tool <flags> <objdir>/vet.cfg` — the actual unit of work: a JSON
//     config naming one package's files and the export data of its
//     dependency cone
//
// Steps 1 and 2 are handled in cmd/sammy-vet; this package handles step 3.
// Because cmd/go drives it package-by-package with test variants included,
// vettool mode is the only mode that analyzes _test.go files — the
// standalone loader (internal/analysis/load) deliberately skips them.
package unit

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
	"repro/internal/citools"
)

// Config mirrors the vet-config JSON emitted by cmd/go (see vetConfig in
// cmd/go/internal/work/exec.go). Unknown fields are ignored on decode.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path in source -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Run executes one vet unit described by the config file at cfgPath,
// recording findings and tool errors on rep. The caller exits with
// rep.ExitCode(): cmd/go treats any non-zero exit as a vet failure and
// relays the tool's stderr.
func Run(rep *citools.Reporter, cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		rep.Errorf("reading vet config: %v", err)
		return
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		rep.Errorf("parsing vet config %s: %v", cfgPath, err)
		return
	}

	// The suite has no cross-package facts, so the "vetx" output is always
	// empty — but it must exist for cmd/go's result caching to work.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			rep.Errorf("writing vetx output: %v", err)
			return
		}
	}
	if cfg.VetxOnly {
		// Dependency package: cmd/go only wants facts, and we have none.
		return
	}
	if len(cfg.GoFiles) == 0 {
		return
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		canonical := path
		if mapped, ok := cfg.ImportMap[path]; ok {
			canonical = mapped
		}
		file := cfg.PackageFile[canonical]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkg, err := load.Check(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if !cfg.SucceedOnTypecheckFailure {
			rep.Errorf("%v", err)
		}
		return
	}
	if len(pkg.TypeErrors) > 0 {
		// A package that does not type-check cannot be analyzed soundly.
		// cmd/go sets SucceedOnTypecheckFailure when the compiler is
		// expected to report the same errors itself.
		if !cfg.SucceedOnTypecheckFailure {
			for _, terr := range pkg.TypeErrors {
				rep.Errorf("%v", terr)
			}
		}
		return
	}

	res, err := suite.RunPackage(pkg, suite.All())
	if err != nil {
		rep.Errorf("%s: %v", cfg.ImportPath, err)
		return
	}
	for _, d := range res.Diagnostics {
		rep.Findingf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
