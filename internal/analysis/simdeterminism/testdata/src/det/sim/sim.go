// Package sim is a simdeterminism fixture: its import-path base ("sim") is
// in the deterministic set, so every nondeterminism idiom below must be
// flagged — except the audited suppressions and the blessed idioms.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clocks(start time.Time) time.Duration {
	_ = time.Now()           // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func wallAudited() time.Time {
	//sammy:nondeterministic-ok: feeds only the sim-speed gauge, never simulation state
	return time.Now()
}

func globals(seeded *rand.Rand) int {
	n := rand.Intn(6)                  // want `math/rand global Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand global Shuffle`
	_ = rand.Float64()                 // want `math/rand global Float64`
	return seeded.Intn(6)              // methods on an injected *rand.Rand are fine
}

func seededOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are fine
}

func names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	return out
}

func namesSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // collect-then-sort: blessed idiom
	}
	sort.Strings(out)
	return out
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `Println inside range over map`
	}
}

func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative accumulation: fine
	}
	return total
}

func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // keyed writes are order-independent: fine
	}
	return out
}
