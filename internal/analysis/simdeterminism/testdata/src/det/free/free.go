// Package free is a simdeterminism fixture outside the deterministic set:
// wall-clock and global-RNG use here must NOT be flagged.
package free

import (
	"math/rand"
	"time"
)

func Uptime(start time.Time) time.Duration {
	_ = time.Now()
	return time.Since(start)
}

func Jitter() float64 {
	return rand.Float64()
}
