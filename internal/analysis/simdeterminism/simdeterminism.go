// Package simdeterminism forbids wall-clock and global-RNG nondeterminism
// inside the repo's deterministic packages. The paper reproduction's
// credibility rests on fixed-seed byte-identical traces (the golden
// FNV-64a tests in lab and abtest): one stray time.Now or math/rand
// global in the simulation stack silently changes every figure.
//
// Inside a deterministic package the analyzer flags:
//
//   - calls to time.Now and time.Since (simulated time comes from
//     Simulator.Now / injected clocks);
//   - any use of a math/rand or math/rand/v2 package-level function
//     (Int, Float64, Shuffle, Seed, ...) — randomness must flow through
//     an injected, seeded *rand.Rand (rand.New(rand.NewSource(seed)));
//   - trace-ordered writes driven by map iteration order: append to a
//     variable declared outside a range-over-map loop (unless the result
//     is sorted afterwards in the same function), and formatted output /
//     event-recording calls inside such a loop.
//
// Audited exceptions carry a //sammy:nondeterministic-ok comment with a
// justification on (or immediately above) the flagged line.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// DeterministicPkgs names the packages (by import-path base) whose
// behaviour must be a pure function of their seeds. It mirrors the list in
// DESIGN.md §11.
var DeterministicPkgs = map[string]bool{
	"sim": true, "tcp": true, "abr": true, "bwest": true,
	"player": true, "pacing": true, "video": true, "traffic": true,
	"netmodel": true, "fault": true, "abtest": true, "lab": true,
	"stats": true, "core": true,
}

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name:        "simdeterminism",
	Doc:         "forbid wall-clock, global math/rand and map-iteration-order nondeterminism in deterministic packages",
	SuppressKey: "nondeterministic-ok",
	Run:         run,
}

// rngConstructors are the math/rand package-level functions that build
// seeded generators rather than consuming the global one.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// emitFuncs are callee names treated as ordered trace emission when they
// appear inside a range-over-map body.
var emitFuncs = map[string]bool{
	"Record": true, "RecordAt": true, "Emit": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true,
	"Log": true, "Logf": true,
}

func run(pass *analysis.Pass) error {
	if !DeterministicPkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		checkClockAndRand(pass, f)
		checkMapRanges(pass, f)
	}
	return nil
}

// checkClockAndRand flags time.Now/time.Since calls and global math/rand
// references.
func checkClockAndRand(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in deterministic package %s (use the simulator clock or an injected clock)",
					fn.Name(), pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			// Methods on *rand.Rand are fine; only package-level
			// functions consume the shared global generator.
			if fn.Type().(*types.Signature).Recv() == nil && !rngConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"math/rand global %s in deterministic package %s (route randomness through an injected seeded *rand.Rand)",
					fn.Name(), pass.Pkg.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags trace-ordered side effects inside range-over-map
// loops: appends to outer variables (unless sorted afterwards) and
// formatted-output / event-recording calls.
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo

	// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
	// call positioned after pos (the collect-then-sort idiom).
	sortedAfter := func(obj types.Object, pos token.Pos) bool {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < pos {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil {
				return true
			}
			if base := analysis.ObjPkgBase(fn); base != "sort" && base != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		return found
	}

	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// append to a variable declared outside the loop.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
					tgt, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[tgt]
					if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
						return true // loop-local accumulator
					}
					if sortedAfter(obj, rs.End()) {
						return true // collect-then-sort idiom
					}
					pass.Reportf(call.Pos(),
						"append to %s inside range over map: element order depends on map iteration (sort the result, or iterate sorted keys)",
						tgt.Name)
					return true
				}
			}
			if fn := analysis.CalleeFunc(info, call); fn != nil && emitFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s inside range over map emits in map iteration order (iterate sorted keys)",
					fn.Name())
			}
			return true
		})
		return true
	})
}
