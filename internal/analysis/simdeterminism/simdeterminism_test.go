package simdeterminism_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	diags := antest.Run(t, simdeterminism.Analyzer, "det/sim", "det/free")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the //sammy:nondeterministic-ok fixture site to be seen and suppressed")
	}
}
