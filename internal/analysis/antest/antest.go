// Package antest is an analysistest-style fixture harness for the
// sammy-vet analyzers. Fixture packages live under
// testdata/src/<importpath> next to the analyzer's test file; imports are
// resolved from testdata/src first (so fixtures can stub repo packages
// like "a/sim" or "a/obs") and from the real build's export data
// otherwise.
//
// Expected findings are declared in the fixture source with analysistest's
// comment syntax:
//
//	rng := rand.Intn(6) // want `math/rand global`
//
// where the quoted text is a regular expression matched against the
// diagnostic message. A line carrying the analyzer's //sammy:<key>
// suppression comment must have no want comment: the harness verifies the
// suppression is honored (no failing diagnostic) and Run returns every
// diagnostic — suppressed ones included — so tests can additionally assert
// the site was seen at all.
package antest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// sharedExports resolves stdlib/module export data once per test process.
var (
	exportsOnce sync.Once
	exports     *load.Exports
)

func sharedExports() *load.Exports {
	exportsOnce.Do(func() {
		wd, _ := os.Getwd()
		exports = load.NewExports(load.ModuleRoot(wd))
	})
	return exports
}

// Run loads testdata/src/<pkgpath> for each pkgpath, applies the analyzer,
// and checks its diagnostics against the fixtures' want comments. It
// returns all diagnostics (suppressed included) for extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) []analysis.Diagnostic {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &srcImporter{
		fset:    fset,
		srcRoot: filepath.Join(wd, "testdata", "src"),
		gc:      sharedExports().Importer(fset),
		memo:    make(map[string]*srcResult),
	}

	var all []analysis.Diagnostic
	for _, pkgpath := range pkgpaths {
		pkg, err := imp.loadSource(pkgpath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkgpath, terr)
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", pkgpath, err)
		}
		check(t, a, pkg, pass.Diagnostics)
		all = append(all, pass.Diagnostics...)
	}
	return all
}

// srcImporter loads packages from testdata/src by source, with gc export
// data as the fallback for real (stdlib) imports.
type srcImporter struct {
	fset    *token.FileSet
	srcRoot string
	gc      types.Importer
	memo    map[string]*srcResult
}

type srcResult struct {
	pkg *load.Package
	err error
}

// Import implements types.Importer for fixture dependency resolution.
func (si *srcImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(si.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := si.loadSource(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("fixture dependency %s: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return si.gc.Import(path)
}

// loadSource parses and type-checks testdata/src/<path>, memoized.
func (si *srcImporter) loadSource(path string) (*load.Package, error) {
	if r, ok := si.memo[path]; ok {
		return r.pkg, r.err
	}
	// Break import cycles in broken fixtures rather than recursing forever.
	si.memo[path] = &srcResult{err: fmt.Errorf("import cycle through %s", path)}
	dir := filepath.Join(si.srcRoot, filepath.FromSlash(path))
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("no .go files in %s", dir)
	}
	var pkg *load.Package
	if err == nil {
		sort.Strings(files)
		pkg, err = load.Check(si.fset, si, path, files)
	}
	si.memo[path] = &srcResult{pkg: pkg, err: err}
	return pkg, err
}

// want is one expected-diagnostic comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// check compares diagnostics against // want comments.
func check(t *testing.T, a *analysis.Analyzer, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		if d.Suppressed {
			continue // honored suppression: must not match a want
		}
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	checkSuppressionRot(t, a, pkg, diags)
}

// checkSuppressionRot fails the test for every //sammy:<key> comment in the
// fixture that no longer suppresses anything. Without this, an analyzer
// change that stops firing on a suppressed fixture line passes silently —
// the fixture keeps documenting a suppression the analyzer never exercises,
// and the per-package suppressed-count assertions drift from the source.
func checkSuppressionRot(t *testing.T, a *analysis.Analyzer, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	if a.SuppressKey == "" {
		return
	}
	// A suppression comment on line L covers a diagnostic on L (trailing
	// comment) or L+1 (comment on its own line above the site) — the same
	// grammar Pass.Reportf honors.
	suppressed := make(map[string]map[int]bool)
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		pos := pkg.Fset.Position(d.Pos)
		if suppressed[pos.Filename] == nil {
			suppressed[pos.Filename] = make(map[int]bool)
		}
		suppressed[pos.Filename][pos.Line] = true
	}
	prefix := "sammy:" + a.SuppressKey
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != prefix && !strings.HasPrefix(text, prefix+":") && !strings.HasPrefix(text, prefix+" ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if !suppressed[pos.Filename][pos.Line] && !suppressed[pos.Filename][pos.Line+1] {
					t.Errorf("%s: stale //%s suppression: no %s diagnostic fires here anymore — delete the comment or fix the fixture", pos, prefix, a.Name)
				}
			}
		}
	}
}

// splitQuoted parses the payload of a want comment: a sequence of
// double-quoted or backquoted regular expressions.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", pos, s[:end+1], err)
			}
			out = append(out, q)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want raw string: %s", pos, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, s)
		}
	}
	return out
}
