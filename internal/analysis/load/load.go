// Package load type-checks Go packages for the sammy-vet analyzers using
// only the standard library: package metadata and export data come from
// `go list -e -export -json -deps`, sources are parsed with go/parser, and
// dependencies are imported through go/importer's gc importer pointed at
// the build cache's export files. This replaces golang.org/x/tools/go/
// packages, which is unavailable in the proxy-less build container.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one type-checked root package (a package matched by the load
// patterns, as opposed to a dependency, which is only imported from export
// data).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors collects soft type-checking failures. Analyzers still run
	// on partially checked packages; drivers decide whether to surface
	// the errors.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Exports resolves import paths to build-cache export data files, shelling
// out to `go list -export` for paths it has not seen. It is safe for
// concurrent use and shared process-wide so repeated analysistest loads do
// not re-list the standard library.
type Exports struct {
	mu  sync.Mutex
	dir string // directory to run `go list` in
	// guarded by mu
	files map[string]string
}

// NewExports returns a resolver running `go list` in dir ("" = cwd).
func NewExports(dir string) *Exports {
	return &Exports{dir: dir, files: make(map[string]string)}
}

// File returns the export data file for path, listing it (and, as a side
// effect, its whole dependency cone) on a miss.
func (e *Exports) File(path string) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.files[path]; ok {
		if f == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	pkgs, err := runList(e.dir, []string{"-deps", "--", path})
	if err != nil {
		return "", err
	}
	for _, p := range pkgs {
		if _, ok := e.files[p.ImportPath]; !ok {
			e.files[p.ImportPath] = p.Export
		}
	}
	f := e.files[path]
	if f == "" {
		e.files[path] = "" // negative-cache
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// add seeds the resolver from an already-performed list.
func (e *Exports) add(pkgs []listedPackage) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
	}
}

// Importer returns a types.Importer that reads gc export data through the
// resolver. fset must be the FileSet used for type-checking.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := e.File(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// runList executes `go list -e -export -json=<fields>` with extra args and
// decodes the JSON stream.
func runList(dir string, extra []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,DepOnly,Incomplete,Error",
	}, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadError is one package the loader could not fully provide: a root
// package `go list` flagged, or a dependency with no export data. Drivers
// must surface these as tool errors (sammy-vet exits 2) — a silently
// skipped package is an analyzer that silently stopped looking.
type LoadError struct {
	ImportPath string
	Detail     string
}

func (e LoadError) Error() string {
	return e.ImportPath + ": " + e.Detail
}

// Packages loads and type-checks the root packages matched by patterns
// (e.g. "./..."), resolving their dependencies from export data. Test
// files are not included — `go vet -vettool=sammy-vet` covers those using
// the toolchain's own loader.
//
// Load failures do not abort the run: every loadable package is still
// analyzed, and the failures come back as LoadErrors so the driver can
// report them and exit with a tool error instead of quietly analyzing a
// subset of the tree.
func Packages(dir string, patterns []string) ([]*Package, []LoadError, error) {
	listed, err := runList(dir, append([]string{"-deps", "--"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	exports := NewExports(dir)
	exports.add(listed)

	fset := token.NewFileSet()
	imp := exports.Importer(fset)

	var out []*Package
	var loadErrs []LoadError
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			// A dependency we can only import from export data; if `go
			// list -e` could not produce it (a failed build, a missing
			// package), every importer of lp will type-check against a
			// hole. "unsafe" is virtual and never has export data.
			if lp.DepOnly && !lp.Standard && lp.Export == "" && lp.ImportPath != "unsafe" {
				detail := "no export data (dependency failed to build?)"
				if lp.Error != nil {
					detail = lp.Error.Err
				}
				loadErrs = append(loadErrs, LoadError{ImportPath: lp.ImportPath, Detail: detail})
			}
			continue
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, LoadError{ImportPath: lp.ImportPath, Detail: lp.Error.Err})
		}
		var files []string
		for _, f := range lp.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(lp.Dir, f)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := Check(fset, imp, lp.ImportPath, files)
		if err != nil {
			loadErrs = append(loadErrs, LoadError{ImportPath: lp.ImportPath, Detail: err.Error()})
			continue
		}
		pkg.Dir = lp.Dir
		out = append(out, pkg)
	}
	return out, loadErrs, nil
}

// Check parses and type-checks one package from explicit file paths using
// the given importer. Hard parse failures abort; type errors are soft and
// collected on the returned Package.
func Check(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	pkg := &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      asts,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Ignore the returned error: it is the first entry of TypeErrors, and
	// partially checked packages are still analyzable.
	pkg.Types, _ = conf.Check(importPath, fset, asts, pkg.Info)
	return pkg, nil
}

// ModuleRoot locates the enclosing module root of dir (the directory
// containing go.mod), falling back to dir itself.
func ModuleRoot(dir string) string {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// IsTestFile reports whether filename is a _test.go file.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
