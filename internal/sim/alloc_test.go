package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/units"
)

// TestSchedulerSteadyStateZeroAlloc asserts the event loop's headline
// property: once the event pool and heap are warm, scheduling and running
// events allocates nothing.
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	s := New()
	if s.Metrics() != nil {
		t.Fatal("test expects an uninstrumented simulator")
	}
	n := 0
	tick := func() { n++ }
	for i := 0; i < 64; i++ {
		s.Schedule(time.Microsecond, tick)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Microsecond, tick)
		s.Run()
	})
	if avg != 0 {
		t.Errorf("steady-state scheduler allocates %.2f allocs/event, want 0", avg)
	}
}

// TestLinkDeliveryZeroAlloc asserts the per-packet link path — pooled
// packet, serialization event, delivery event, handler, recycle — is
// allocation-free once warm.
func TestLinkDeliveryZeroAlloc(t *testing.T) {
	s := New()
	count := 0
	dst := HandlerFunc(func(p *Packet) { count++ })
	l := NewLink(s, LinkConfig{Rate: 1 * units.Gbps, Delay: time.Millisecond, QueueLimit: 10 * units.MB}, dst)
	for i := 0; i < 256; i++ {
		p := s.AllocPacket()
		p.Seq, p.Size = int64(i), 1500
		l.Send(p)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		p := s.AllocPacket()
		p.Seq, p.Size = 1, 1500
		l.Send(p)
		s.Run()
	})
	if avg != 0 {
		t.Errorf("link delivery allocates %.2f allocs/packet, want 0", avg)
	}
	if count == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestCancelZeroAlloc asserts that the schedule-then-cancel cycle (the TCP
// pace/RTO timer pattern) is allocation-free and does not grow the heap.
func TestCancelZeroAlloc(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(time.Hour, fn).Cancel()
	}
	avg := testing.AllocsPerRun(1000, func() {
		e := s.Schedule(time.Hour, fn)
		e.Cancel()
	})
	if avg != 0 {
		t.Errorf("schedule+cancel allocates %.2f allocs, want 0", avg)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending = %d after cancel-only workload, want 0", got)
	}
}

// TestPendingExcludesCancelled: cancelled events are removed from the heap
// immediately, so Pending stays accurate and cancel-heavy workloads do not
// pin memory until their timestamps drain.
func TestPendingExcludesCancelled(t *testing.T) {
	s := New()
	e1 := s.Schedule(time.Hour, func() {})
	s.Schedule(2*time.Hour, func() {})
	e3 := s.Schedule(3*time.Hour, func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e1.Cancel()
	e3.Cancel()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d after cancelling two, want 1", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending = %d after Run, want 0", got)
	}
}

// TestCancelAfterReuse is the generation-counter property: a ref to an
// event that already fired must not cancel the event now occupying the
// recycled slot.
func TestCancelAfterReuse(t *testing.T) {
	s := New()
	e1 := s.Schedule(time.Millisecond, func() {})
	s.Run()
	if e1.Pending() {
		t.Fatal("fired event still pending")
	}
	secondFired := false
	e2 := s.Schedule(time.Millisecond, func() { secondFired = true })
	if e2.e != e1.e {
		t.Fatalf("pool did not reuse the event slot (test assumption broken)")
	}
	e1.Cancel() // stale ref: must be a no-op
	if !e2.Pending() {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
	s.Run()
	if !secondFired {
		t.Error("reused event did not fire")
	}
}

// TestCancelStress randomly cancels a subset of scheduled events and checks
// that survivors fire in timestamp order and casualties never fire —
// exercising heapRemove's sift-up/sift-down repair from interior positions.
func TestCancelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		const n = 200
		type rec struct {
			ref       EventRef
			at        time.Duration
			cancelled bool
		}
		events := make([]rec, n)
		var fired []time.Duration
		for i := range events {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			events[i].at = at
			events[i].ref = s.At(at, func() { fired = append(fired, at) })
		}
		cancelledCount := 0
		for i := range events {
			if rng.Float64() < 0.4 {
				events[i].ref.Cancel()
				events[i].cancelled = true
				cancelledCount++
			}
		}
		if got := s.Pending(); got != n-cancelledCount {
			t.Fatalf("Pending = %d, want %d", got, n-cancelledCount)
		}
		s.Run()
		if len(fired) != n-cancelledCount {
			t.Fatalf("fired %d events, want %d", len(fired), n-cancelledCount)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatal("survivors fired out of order")
		}
	}
}

// TestRunAfterRunUntilDoesNotRewindClock is the simEndOfTime regression
// test: Run's end-of-time sentinel must never advance (or rewind) the clock
// past the last event.
func TestRunAfterRunUntilDoesNotRewindClock(t *testing.T) {
	s := New()
	s.Schedule(10*time.Millisecond, func() {})
	s.RunUntil(50 * time.Millisecond)
	if s.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v after RunUntil, want 50ms", s.Now())
	}
	s.Run() // empty queue: clock must hold at 50ms, not jump or rewind
	if s.Now() != 50*time.Millisecond {
		t.Errorf("Now = %v after Run on empty queue, want 50ms", s.Now())
	}
	s.Schedule(20*time.Millisecond, func() {}) // at absolute 70ms
	s.Run()
	if s.Now() != 70*time.Millisecond {
		t.Errorf("Now = %v after running a later event, want 70ms", s.Now())
	}
}

// TestPacketPoolReuse checks the packet pool protocol: freed pooled packets
// come back zeroed, and hand-built packets opt out.
func TestPacketPoolReuse(t *testing.T) {
	s := New()
	p := s.AllocPacket()
	p.Flow, p.Seq, p.Size, p.Payload = 7, 99, 1500, "x"
	s.FreePacket(p)
	q := s.AllocPacket()
	if q != p {
		t.Fatal("pool did not reuse the freed packet")
	}
	if q.Flow != 0 || q.Seq != 0 || q.Size != 0 || q.Payload != nil {
		t.Errorf("reused packet not zeroed: %+v", q)
	}
	handBuilt := &Packet{Seq: 1}
	s.FreePacket(handBuilt) // must not enter the pool
	if got := s.AllocPacket(); got == handBuilt {
		t.Error("hand-built packet entered the pool")
	}
}

// TestLinkRecyclesDroppedPackets: pooled packets dropped at a full queue are
// recycled immediately rather than leaked.
func TestLinkRecyclesDroppedPackets(t *testing.T) {
	s := New()
	l := NewLink(s, LinkConfig{Rate: 12 * units.Mbps, Delay: time.Millisecond, QueueLimit: 3000},
		HandlerFunc(func(p *Packet) {}))
	accepted, dropped := 0, 0
	for i := 0; i < 10; i++ {
		p := s.AllocPacket()
		p.Seq, p.Size = int64(i), 1500
		if l.Send(p) {
			accepted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("expected drops at the full queue")
	}
	// A dropped packet goes straight back to the pool and is reused by the
	// very next send, so the whole drop storm shares one slot: the working
	// set is accepted packets + 1, regardless of how many were dropped.
	if got := len(s.freePkts); got != 1 {
		t.Errorf("free pool holds %d packets pre-run, want 1 (drops recycle through one slot)", got)
	}
	s.Run()
	if got := len(s.freePkts); got != accepted+1 {
		t.Errorf("free pool holds %d packets post-run, want %d", got, accepted+1)
	}
}
