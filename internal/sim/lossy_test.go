package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/units"
)

func TestLossyLinkDropsAtConfiguredRate(t *testing.T) {
	s := New()
	delivered := 0
	inner := NewLink(s, LinkConfig{Rate: 100 * units.Mbps, Delay: time.Millisecond, QueueLimit: 10 * units.MB},
		HandlerFunc(func(p *Packet) { delivered++ }))
	lossy, err := NewLossyLink(inner, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	const n = 10000
	sent := 0
	for i := 0; i < n; i++ {
		if lossy.Send(&Packet{Seq: int64(i), Size: 1500}) {
			sent++
		}
	}
	s.Run()
	lossRate := float64(lossy.RandomDrops) / n
	if lossRate < 0.08 || lossRate > 0.12 {
		t.Errorf("random loss rate = %.3f, want ≈ 0.1", lossRate)
	}
	if delivered != sent {
		t.Errorf("delivered %d != admitted %d", delivered, sent)
	}
	if lossy.Inner() != inner {
		t.Error("Inner() should expose the wrapped link")
	}
}

func TestLossyLinkZeroRatePassthrough(t *testing.T) {
	s := New()
	delivered := 0
	inner := NewLink(s, LinkConfig{Rate: 10 * units.Mbps, Delay: 0},
		HandlerFunc(func(p *Packet) { delivered++ }))
	lossy, err := NewLossyLink(inner, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lossy.Send(&Packet{Size: 1500})
	}
	s.Run()
	if delivered != 100 || lossy.RandomDrops != 0 {
		t.Errorf("passthrough broken: delivered=%d drops=%d", delivered, lossy.RandomDrops)
	}
}

func TestLossyLinkValidation(t *testing.T) {
	s := New()
	inner := NewLink(s, LinkConfig{Rate: 1 * units.Mbps}, nil)
	for name, fn := range map[string]func() (*LossyLink, error){
		"rate 1":   func() (*LossyLink, error) { return NewLossyLink(inner, 1, rand.New(rand.NewSource(1))) },
		"negative": func() (*LossyLink, error) { return NewLossyLink(inner, -0.1, rand.New(rand.NewSource(1))) },
		"nil rng":  func() (*LossyLink, error) { return NewLossyLink(inner, 0.1, nil) },
		"nil link": func() (*LossyLink, error) { return NewLossyLink(nil, 0.1, rand.New(rand.NewSource(1))) },
	} {
		if l, err := fn(); err == nil || l != nil {
			t.Errorf("%s: expected error, got link=%v err=%v", name, l, err)
		}
	}
}
