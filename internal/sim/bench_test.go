package sim

import (
	"testing"
	"time"

	"repro/internal/units"
)

func BenchmarkEventLoop(b *testing.B) {
	s := New()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			s.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.Run()
}

func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(time.Hour, func() {})
		e.Cancel()
		if i%1024 == 0 {
			s.RunUntil(s.Now()) // drain cancelled events occasionally
		}
	}
}

func BenchmarkLinkTransit(b *testing.B) {
	s := New()
	delivered := 0
	l := NewLink(s, LinkConfig{Rate: 1 * units.Gbps, Delay: time.Millisecond, QueueLimit: 100 * units.MB},
		HandlerFunc(func(p *Packet) { delivered++ }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(&Packet{Seq: int64(i), Size: 1500})
		if i%4096 == 0 {
			s.Run()
		}
	}
	s.Run()
}
