package sim

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

func BenchmarkEventLoop(b *testing.B) {
	s := New()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			s.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.Run()
}

func BenchmarkScheduleCancel(b *testing.B) {
	// Cancel removes the event from the heap eagerly, so this workload —
	// the shape of TCP pace/RTO timers — leaves nothing behind to drain.
	s := New()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e := s.Schedule(time.Hour, fn)
		e.Cancel()
	}
}

func BenchmarkLinkTransit(b *testing.B) {
	s := New()
	delivered := 0
	l := NewLink(s, LinkConfig{Rate: 1 * units.Gbps, Delay: time.Millisecond, QueueLimit: 100 * units.MB},
		HandlerFunc(func(p *Packet) { delivered++ }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.AllocPacket()
		p.Seq, p.Size = int64(i), 1500
		l.Send(p)
		if i%4096 == 0 {
			s.Run()
		}
	}
	s.Run()
}

// benchSimLoop drives a link-plus-event-loop workload shaped like the lab
// experiments' inner loop: schedule, transmit, deliver.
func benchSimLoop(b *testing.B, s *Simulator) {
	delivered := 0
	l := NewLink(s, LinkConfig{Rate: 1 * units.Gbps, Delay: 100 * time.Microsecond, QueueLimit: 1 * units.MB},
		HandlerFunc(func(p *Packet) { delivered++ }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.AllocPacket()
		p.Seq, p.Size = int64(i), 1500
		l.Send(p)
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkSimLoop is the instrumentation-off baseline: the simulator pays
// one nil check per event. Compare against BenchmarkSimLoopInstrumented to
// measure metric overhead (the acceptance bar is ~5% with metrics off).
func BenchmarkSimLoop(b *testing.B) {
	benchSimLoop(b, New())
}

// BenchmarkSimLoopInstrumented runs the same workload with a full metrics
// registry and event recorder attached.
func BenchmarkSimLoopInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	reg.SetRecorder(obs.NewRecorder(4096))
	s := New()
	s.SetMetrics(NewMetrics(reg))
	benchSimLoop(b, s)
}
