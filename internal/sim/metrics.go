package sim

import (
	"repro/internal/obs"
)

// Metrics holds the simulator's observability hooks. A nil *Metrics (the
// default) disables instrumentation: the event loop and links pay exactly
// one pointer comparison per operation. Individual fields may also be nil;
// obs types no-op on nil receivers.
//
// Counters aggregate across every link attached to the simulator, matching
// how the experiments reason about "the bottleneck": per-link breakdowns
// come from Link.Stats, which stays per-link and always-on.
type Metrics struct {
	// Event loop.
	EventsDispatched *obs.Counter // callbacks executed by RunUntil
	EventsScheduled  *obs.Counter // events pushed onto the heap

	// Links (aggregated over all links on this simulator).
	LinkSentPackets      *obs.Counter   // packets accepted for transmission
	LinkSentBytes        *obs.Counter   // bytes accepted for transmission
	LinkDroppedPackets   *obs.Counter   // drop-tail queue drops
	LinkDroppedBytes     *obs.Counter   // bytes of dropped packets
	LinkDeliveredPackets *obs.Counter   // packets handed to destinations
	RandomDropPackets    *obs.Counter   // LossyLink non-congestive drops
	FaultDropPackets     *obs.Counter   // FaultyLink burst-loss and blackout drops
	QueueBytes           *obs.Histogram // occupancy sampled at each enqueue
	PeakQueueBytes       *obs.Gauge     // maximum occupancy seen on any link

	// Wall-clock accounting: how much simulated time each RunUntil covers
	// per unit of real time. TimeRatio is sim-seconds per wall-second for
	// the most recent RunUntil; the counters accumulate across calls.
	SimNanos  *obs.Counter
	WallNanos *obs.Counter
	TimeRatio *obs.Gauge

	// Recorder receives "link_drop" events (Subj = flow id as decimal,
	// V = packet bytes, Aux = queue bytes at drop time). Nil skips events.
	Recorder *obs.Recorder
}

// NewMetrics builds a Metrics wired to registry r (nil r yields nil,
// keeping instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		EventsDispatched:     r.Counter("sim_events_dispatched"),
		EventsScheduled:      r.Counter("sim_events_scheduled"),
		LinkSentPackets:      r.Counter("sim_link_sent_packets"),
		LinkSentBytes:        r.Counter("sim_link_sent_bytes"),
		LinkDroppedPackets:   r.Counter("sim_link_dropped_packets"),
		LinkDroppedBytes:     r.Counter("sim_link_dropped_bytes"),
		LinkDeliveredPackets: r.Counter("sim_link_delivered_packets"),
		RandomDropPackets:    r.Counter("sim_random_dropped_packets"),
		FaultDropPackets:     r.Counter("sim_fault_dropped_packets"),
		QueueBytes:           r.Histogram("sim_queue_bytes", obs.ExpBuckets(1500, 2, 16)),
		PeakQueueBytes:       r.Gauge("sim_peak_queue_bytes"),
		SimNanos:             r.Counter("sim_time_ns"),
		WallNanos:            r.Counter("sim_wall_time_ns"),
		TimeRatio:            r.Gauge("sim_time_ratio"),
		Recorder:             r.Recorder(),
	}
}

// SetMetrics attaches m to the simulator (nil detaches). Links created on
// this simulator report through the same Metrics, whenever attached.
func (s *Simulator) SetMetrics(m *Metrics) { s.metrics = m }

// Metrics reports the attached metrics, nil when instrumentation is off.
func (s *Simulator) Metrics() *Metrics { return s.metrics }
