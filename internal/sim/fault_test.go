package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/units"
)

func faultyTestLink(t *testing.T, profile *fault.Profile, seed int64, onPacket func(*Packet)) (*Simulator, *FaultyLink) {
	t.Helper()
	s := New()
	inner := NewLink(s, LinkConfig{Rate: 100 * units.Mbps, Delay: time.Millisecond, QueueLimit: 10 * units.MB},
		HandlerFunc(onPacket))
	fl, err := NewFaultyLink(inner, profile, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s, fl
}

func TestFaultyLinkBurstLossDeterminism(t *testing.T) {
	profile := &fault.Profile{Loss: fault.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.2, LossBad: 0.5}}
	run := func(seed int64) (admitted []bool, drops int64) {
		_, fl := faultyTestLink(t, profile, seed, nil)
		admitted = make([]bool, 5000)
		for i := range admitted {
			admitted[i] = fl.Send(&Packet{Seq: int64(i), Size: 1500})
		}
		return admitted, fl.BurstDrops
	}
	a, an := run(3)
	b, bn := run(3)
	if an != bn {
		t.Fatalf("drop counts differ under the same seed: %d vs %d", an, bn)
	}
	if an == 0 {
		t.Fatal("loss chain never fired; test is vacuous")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d fate differs under the same seed", i)
		}
	}
	if _, cn := run(4); cn == an {
		t.Logf("note: different seed produced the same drop count (%d); sequences may still differ", cn)
	}
}

func TestFaultyLinkBlackoutDropsEverything(t *testing.T) {
	delivered := 0
	profile := &fault.Profile{Timeline: fault.MustTimeline(
		fault.Phase{Start: 10 * time.Millisecond, Duration: 20 * time.Millisecond, Multiplier: 0},
	)}
	s, fl := faultyTestLink(t, profile, 1, func(*Packet) { delivered++ })
	// One packet per millisecond for 40 ms: those inside [10ms, 30ms) die.
	for i := 0; i < 40; i++ {
		i := i
		s.At(time.Duration(i)*time.Millisecond, func() {
			fl.Send(&Packet{Seq: int64(i), Size: 1500})
		})
	}
	s.Run()
	if fl.BlackoutDrops != 20 {
		t.Errorf("blackout drops = %d, want the 20 packets inside the phase", fl.BlackoutDrops)
	}
	if delivered != 20 {
		t.Errorf("delivered = %d, want 20", delivered)
	}
	if fl.BurstDrops != 0 {
		t.Errorf("burst drops = %d on a loss-free profile", fl.BurstDrops)
	}
}

func TestApplyTimelineStepsLinkRate(t *testing.T) {
	s := New()
	link := NewLink(s, LinkConfig{Rate: 40 * units.Mbps, Delay: 0, QueueLimit: 10 * units.MB}, nil)
	tl := fault.MustTimeline(
		fault.Phase{Start: 10 * time.Millisecond, Duration: 10 * time.Millisecond, Multiplier: 0.25},
	)
	ApplyTimeline(link, tl)
	var during, after units.BitsPerSecond
	s.At(15*time.Millisecond, func() { during = link.rate })
	s.At(25*time.Millisecond, func() { after = link.rate })
	s.Run()
	if during != 10*units.Mbps {
		t.Errorf("rate during the step = %v, want 10 Mbps", during)
	}
	if after != 40*units.Mbps {
		t.Errorf("rate after the step = %v, want the nominal 40 Mbps", after)
	}
}

func TestFaultyLinkValidation(t *testing.T) {
	s := New()
	inner := NewLink(s, LinkConfig{Rate: units.Mbps}, nil)
	if _, err := NewFaultyLink(nil, nil, nil); err == nil {
		t.Error("nil inner link accepted")
	}
	if _, err := NewFaultyLink(inner, &fault.Profile{Loss: fault.GEConfig{LossBad: 2}}, nil); err == nil {
		t.Error("invalid loss config accepted")
	}
	if _, err := NewFaultyLink(inner, &fault.Profile{Loss: fault.GEConfig{LossBad: 0.5, PBadToGood: 0.1}}, nil); err == nil {
		t.Error("enabled loss without an rng accepted")
	}
	// A nil profile is a clean passthrough.
	fl, err := NewFaultyLink(inner, nil, nil)
	if err != nil {
		t.Fatalf("nil profile rejected: %v", err)
	}
	if !fl.Send(&Packet{Size: 1500}) {
		t.Error("clean faulty link dropped a packet")
	}
}
