package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// LossyLink wraps a Link with independent random packet loss, modelling
// non-congestive loss (radio noise, transient cross-traffic collisions).
// Congestive drop-tail loss still happens inside the wrapped link; this
// wrapper adds the residual loss floor real paths have.
type LossyLink struct {
	link *Link
	rate float64
	rng  *rand.Rand

	// RandomDrops counts packets dropped by the random process (separate
	// from the inner link's queue drops).
	RandomDrops int64
}

// NewLossyLink wraps link with loss probability rate per packet, drawn from
// rng. rate must be in [0, 1) and rng must not be nil when rate > 0; bad
// parameters are reported as errors so scenario configs loaded at runtime
// fail cleanly instead of panicking.
func NewLossyLink(link *Link, rate float64, rng *rand.Rand) (*LossyLink, error) {
	if link == nil {
		return nil, fmt.Errorf("sim: lossy link needs an inner link")
	}
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("sim: loss rate %g out of [0, 1)", rate)
	}
	if rate > 0 && rng == nil {
		return nil, fmt.Errorf("sim: lossy link needs an rng when rate > 0")
	}
	return &LossyLink{link: link, rate: rate, rng: rng}, nil
}

// Send forwards p to the wrapped link unless the random process drops it.
// It reports whether the packet entered the link. Like Link.Send, it takes
// ownership of p: dropped pooled packets are recycled immediately.
func (l *LossyLink) Send(p *Packet) bool {
	if l.rate > 0 && l.rng.Float64() < l.rate {
		l.RandomDrops++
		if m := l.link.sim.metrics; m != nil {
			m.RandomDropPackets.Inc()
			m.Recorder.RecordAt(l.link.sim.now, "random_drop", flowName(p.Flow),
				float64(p.Size), 0)
		}
		l.link.sim.FreePacket(p)
		return false
	}
	return l.link.Send(p)
}

// Inner exposes the wrapped link for stats readouts.
func (l *LossyLink) Inner() *Link { return l.link }

// QueueBytes reports the inner link's queue occupancy.
func (l *LossyLink) QueueBytes() units.Bytes { return l.link.QueueBytes() }
