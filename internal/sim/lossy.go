package sim

import (
	"math/rand"

	"repro/internal/units"
)

// LossyLink wraps a Link with independent random packet loss, modelling
// non-congestive loss (radio noise, transient cross-traffic collisions).
// Congestive drop-tail loss still happens inside the wrapped link; this
// wrapper adds the residual loss floor real paths have.
type LossyLink struct {
	link *Link
	rate float64
	rng  *rand.Rand

	// RandomDrops counts packets dropped by the random process (separate
	// from the inner link's queue drops).
	RandomDrops int64
}

// NewLossyLink wraps link with loss probability rate per packet, drawn from
// rng. rate must be in [0, 1) and rng must not be nil when rate > 0.
func NewLossyLink(link *Link, rate float64, rng *rand.Rand) *LossyLink {
	if rate < 0 || rate >= 1 {
		panic("sim: loss rate must be in [0, 1)")
	}
	if rate > 0 && rng == nil {
		panic("sim: lossy link needs an rng")
	}
	return &LossyLink{link: link, rate: rate, rng: rng}
}

// Send forwards p to the wrapped link unless the random process drops it.
// It reports whether the packet entered the link.
func (l *LossyLink) Send(p *Packet) bool {
	if l.rate > 0 && l.rng.Float64() < l.rate {
		l.RandomDrops++
		if m := l.link.sim.metrics; m != nil {
			m.RandomDropPackets.Inc()
			m.Recorder.RecordAt(l.link.sim.now, "random_drop", flowName(p.Flow),
				float64(p.Size), 0)
		}
		return false
	}
	return l.link.Send(p)
}

// Inner exposes the wrapped link for stats readouts.
func (l *LossyLink) Inner() *Link { return l.link }

// QueueBytes reports the inner link's queue occupancy.
func (l *LossyLink) QueueBytes() units.Bytes { return l.link.QueueBytes() }
