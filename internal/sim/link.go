package sim

import (
	"strconv"
	"time"

	"repro/internal/units"
)

// flowName renders a FlowID as an event subject. Only called on cold paths
// (drops), so the allocation does not matter.
func flowName(f FlowID) string { return strconv.Itoa(int(f)) }

// Link is a unidirectional network link with a fixed rate, propagation delay
// and a drop-tail queue bounded in bytes. Packets sent while the link is
// transmitting queue up; packets arriving to a full queue are dropped.
//
// Link also keeps the congestion statistics the experiments report: drops,
// delivered bytes and peak queue occupancy.
type Link struct {
	sim   *Simulator
	rate  units.BitsPerSecond
	delay time.Duration
	limit units.Bytes // queue limit; 0 means effectively unbounded
	dst   Handler

	queue       []*Packet
	queuedBytes units.Bytes
	busy        bool

	// Stats accumulates link counters; exported for experiment readouts.
	Stats LinkStats
}

// LinkStats are cumulative counters for a link.
type LinkStats struct {
	Sent           int64       // packets accepted for transmission
	SentBytes      units.Bytes // bytes accepted for transmission
	Dropped        int64       // packets dropped at the queue
	DroppedBytes   units.Bytes // bytes dropped at the queue
	Delivered      int64       // packets handed to the destination
	DeliveredBytes units.Bytes // bytes handed to the destination
	PeakQueue      units.Bytes // maximum instantaneous queue occupancy
}

// LinkConfig parameterizes a link.
type LinkConfig struct {
	Rate       units.BitsPerSecond // serialization rate; must be > 0
	Delay      time.Duration       // one-way propagation delay
	QueueLimit units.Bytes         // drop-tail bound in bytes; 0 = unbounded
}

// NewLink creates a link on s delivering packets to dst.
func NewLink(s *Simulator, cfg LinkConfig, dst Handler) *Link {
	if cfg.Rate <= 0 {
		panic("sim: link rate must be positive")
	}
	return &Link{sim: s, rate: cfg.Rate, delay: cfg.Delay, limit: cfg.QueueLimit, dst: dst}
}

// Rate reports the link's serialization rate.
func (l *Link) Rate() units.BitsPerSecond { return l.rate }

// Delay reports the link's one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// QueueBytes reports the current queue occupancy in bytes, excluding the
// packet being serialized.
func (l *Link) QueueBytes() units.Bytes { return l.queuedBytes }

// QueueLimit reports the configured drop-tail bound.
func (l *Link) QueueLimit() units.Bytes { return l.limit }

// SetDestination replaces the delivery handler, which lets topologies be
// wired after construction.
func (l *Link) SetDestination(dst Handler) { l.dst = dst }

// SetRate changes the serialization rate, effective from the next packet to
// start transmitting. Fault timelines use it to script step bandwidth drops.
// It panics on a non-positive rate, like NewLink.
func (l *Link) SetRate(rate units.BitsPerSecond) {
	if rate <= 0 {
		panic("sim: link rate must be positive")
	}
	l.rate = rate
}

// Send enqueues p for transmission, dropping it if the queue is full.
// It reports whether the packet was accepted. Send takes ownership of p:
// pooled packets are recycled after delivery (or immediately on drop), so
// the caller must not touch p afterwards.
func (l *Link) Send(p *Packet) bool {
	m := l.sim.metrics
	if l.limit > 0 && l.queuedBytes+p.Size > l.limit {
		l.Stats.Dropped++
		l.Stats.DroppedBytes += p.Size
		if m != nil {
			m.LinkDroppedPackets.Inc()
			m.LinkDroppedBytes.Add(int64(p.Size))
			m.Recorder.RecordAt(l.sim.now, "link_drop", flowName(p.Flow),
				float64(p.Size), float64(l.queuedBytes))
		}
		l.sim.FreePacket(p)
		return false
	}
	l.Stats.Sent++
	l.Stats.SentBytes += p.Size
	l.queue = append(l.queue, p)
	l.queuedBytes += p.Size
	if l.queuedBytes > l.Stats.PeakQueue {
		l.Stats.PeakQueue = l.queuedBytes
	}
	if m != nil {
		m.LinkSentPackets.Inc()
		m.LinkSentBytes.Add(int64(p.Size))
		m.QueueBytes.Observe(float64(l.queuedBytes))
		m.PeakQueueBytes.SetMax(float64(l.queuedBytes))
	}
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext pops the head of the queue and models its serialization: a
// typed, pre-bound event carries the packet (no closures escape per hop).
func (l *Link) transmitNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	p := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue[len(l.queue)-1] = nil
	l.queue = l.queue[:len(l.queue)-1]
	l.queuedBytes -= p.Size

	l.sim.scheduleLink(l.rate.TimeToSend(p.Size), evSerialized, l, p)
}

// onSerialized runs when p's last bit leaves the sender: the wire is free
// for the next packet while this one propagates. The scheduling order
// (propagation first, then the next serialization) matches the closure-based
// implementation event for event, keeping traces byte-identical.
func (l *Link) onSerialized(p *Packet) {
	l.sim.scheduleLink(l.delay, evDeliver, l, p)
	l.transmitNext()
}

// deliver hands p to the destination, then recycles it. The handler owns p
// only for the duration of the callback.
func (l *Link) deliver(p *Packet) {
	l.Stats.Delivered++
	l.Stats.DeliveredBytes += p.Size
	if m := l.sim.metrics; m != nil {
		m.LinkDeliveredPackets.Inc()
	}
	if l.dst != nil {
		l.dst.HandlePacket(p)
	}
	l.sim.FreePacket(p)
}

// LossRate reports the fraction of offered packets that were dropped.
func (s LinkStats) LossRate() float64 {
	offered := s.Sent + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}
