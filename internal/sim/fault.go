package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/units"
)

// FaultyLink wraps a Link with a fault.Profile: a Gilbert-Elliott burst-loss
// chain applied per packet, and timeline blackouts during which nothing gets
// through. Step bandwidth drops from the same timeline are applied to the
// link's serialization rate via ApplyTimeline (scheduled rate changes), so a
// wrapped link models the full "flaky path" scenario.
type FaultyLink struct {
	link     *Link
	ge       *fault.GilbertElliott
	timeline *fault.Timeline

	// BurstDrops counts packets lost by the burst-loss chain; BlackoutDrops
	// counts packets that arrived during a blackout.
	BurstDrops    int64
	BlackoutDrops int64
}

// NewFaultyLink wraps link with profile's faults. rng drives the loss chain
// and must not be nil when the profile has loss enabled. ApplyTimeline is
// installed automatically for the profile's bandwidth steps.
func NewFaultyLink(link *Link, profile *fault.Profile, rng *rand.Rand) (*FaultyLink, error) {
	if link == nil {
		return nil, fmt.Errorf("sim: faulty link needs an inner link")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	var ge *fault.GilbertElliott
	var tl *fault.Timeline
	if profile != nil {
		var err error
		ge, err = fault.NewGilbertElliott(profile.Loss, rng)
		if err != nil {
			return nil, err
		}
		tl = profile.Timeline
	}
	ApplyTimeline(link, tl)
	return &FaultyLink{link: link, ge: ge, timeline: tl}, nil
}

// Send forwards p to the wrapped link unless a fault claims it. It reports
// whether the packet entered the link. Like Link.Send, it takes ownership
// of p: dropped pooled packets are recycled immediately.
func (l *FaultyLink) Send(p *Packet) bool {
	now := l.link.sim.now
	if l.timeline != nil && l.timeline.Multiplier(now) == 0 {
		l.BlackoutDrops++
		l.dropMetrics("blackout_drop", p)
		l.link.sim.FreePacket(p)
		return false
	}
	if l.ge.Lose() {
		l.BurstDrops++
		l.dropMetrics("burst_drop", p)
		l.link.sim.FreePacket(p)
		return false
	}
	return l.link.Send(p)
}

func (l *FaultyLink) dropMetrics(kind string, p *Packet) {
	if m := l.link.sim.metrics; m != nil {
		m.FaultDropPackets.Inc()
		m.Recorder.RecordAt(l.link.sim.now, kind, flowName(p.Flow), float64(p.Size), 0)
	}
}

// Inner exposes the wrapped link for stats readouts.
func (l *FaultyLink) Inner() *Link { return l.link }

// QueueBytes reports the inner link's queue occupancy.
func (l *FaultyLink) QueueBytes() units.Bytes { return l.link.QueueBytes() }

// ApplyTimeline schedules the timeline's step bandwidth changes onto the
// link: at each phase boundary the serialization rate becomes
// nominal × multiplier. Blackout phases (multiplier 0) are skipped — a link
// cannot serialize at rate zero; FaultyLink models them by dropping every
// packet instead. A nil timeline is a no-op.
func ApplyTimeline(link *Link, tl *fault.Timeline) {
	if tl == nil {
		return
	}
	nominal := link.rate
	for _, ph := range tl.Phases() {
		ph := ph
		if ph.Multiplier > 0 && ph.Multiplier < 1 {
			link.sim.At(ph.Start, func() {
				link.SetRate(units.BitsPerSecond(float64(nominal) * ph.Multiplier))
			})
		}
		if ph.Multiplier < 1 {
			link.sim.At(ph.End(), func() { link.SetRate(nominal) })
		}
	}
}
