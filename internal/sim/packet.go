package sim

import (
	"time"

	"repro/internal/units"
)

// FlowID identifies a flow so that shared links can classify packets back to
// their endpoints.
type FlowID int32

// Packet is a simulated network packet. Size is the wire size including
// headers; Seq is protocol-specific (TCP uses packet sequence numbers, UDP
// uses a send counter).
type Packet struct {
	Flow    FlowID
	Seq     int64
	Ack     int64
	IsAck   bool
	Size    units.Bytes
	SentAt  time.Duration // stamped by the sender for delay measurement
	Retrans bool          // true for TCP retransmissions
	Payload any           // opaque per-protocol data
}

// Sender accepts packets for transmission, reporting whether the packet
// was admitted. *Link and *LossyLink both implement it, so endpoints can be
// wired to either.
type Sender interface {
	Send(p *Packet) bool
}

// Handler consumes delivered packets.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Classifier routes delivered packets to per-flow handlers, so several flows
// can share one bottleneck link.
type Classifier struct {
	handlers map[FlowID]Handler
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{handlers: make(map[FlowID]Handler)}
}

// Register installs h as the receiver for flow id, replacing any previous
// registration.
func (c *Classifier) Register(id FlowID, h Handler) { c.handlers[id] = h }

// Unregister removes the handler for flow id.
func (c *Classifier) Unregister(id FlowID) { delete(c.handlers, id) }

// HandlePacket dispatches p to its flow's handler; packets for unknown flows
// are dropped silently, like a host with no listening socket.
func (c *Classifier) HandlePacket(p *Packet) {
	if h, ok := c.handlers[p.Flow]; ok {
		h.HandlePacket(p)
	}
}
