package sim

import (
	"time"

	"repro/internal/units"
)

// FlowID identifies a flow so that shared links can classify packets back to
// their endpoints.
type FlowID int32

// Packet is a simulated network packet. Size is the wire size including
// headers; Seq is protocol-specific (TCP uses packet sequence numbers, UDP
// uses a send counter).
//
// Hot-path producers obtain packets from Simulator.AllocPacket and hand
// them to a Sender, which owns them from then on: the link recycles the
// packet after the delivery handler returns (or on drop). Handlers must not
// retain a delivered packet — copy fields out instead. Hand-built packets
// (&Packet{...}) opt out of recycling and behave as before.
type Packet struct {
	Flow    FlowID
	Seq     int64
	Ack     int64
	IsAck   bool
	Size    units.Bytes
	SentAt  time.Duration // stamped by the sender for delay measurement
	Retrans bool          // true for TCP retransmissions
	Payload any           // opaque per-protocol data

	pooled bool // came from a Simulator pool; recycled by the link layer
}

// Sender accepts packets for transmission, reporting whether the packet
// was admitted. *Link and *LossyLink both implement it, so endpoints can be
// wired to either.
type Sender interface {
	Send(p *Packet) bool
}

// Handler consumes delivered packets.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Classifier routes delivered packets to per-flow handlers, so several flows
// can share one bottleneck link. Flow ids index a dense slice — experiments
// use small consecutive ids — so per-packet dispatch is a bounds check and a
// load rather than a map lookup.
type Classifier struct {
	handlers []Handler
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{}
}

// Register installs h as the receiver for flow id, replacing any previous
// registration. Negative ids panic; ids index a dense table, so sparse
// gigantic ids would waste memory and are a caller bug.
func (c *Classifier) Register(id FlowID, h Handler) {
	if id < 0 {
		panic("sim: classifier flow ids must be non-negative")
	}
	for int(id) >= len(c.handlers) {
		c.handlers = append(c.handlers, nil)
	}
	c.handlers[id] = h
}

// Unregister removes the handler for flow id.
func (c *Classifier) Unregister(id FlowID) {
	if int(id) < len(c.handlers) {
		c.handlers[id] = nil
	}
}

// HandlePacket dispatches p to its flow's handler; packets for unknown flows
// are dropped silently, like a host with no listening socket.
func (c *Classifier) HandlePacket(p *Packet) {
	if i := int(p.Flow); i >= 0 && i < len(c.handlers) && c.handlers[i] != nil {
		c.handlers[i].HandlePacket(p)
	}
}
