// Package sim is a packet-level discrete-event network simulator: an event
// loop plus links with finite rate, propagation delay and drop-tail queues.
// It is the substrate for the paper's lab experiments (Figures 4, 7 and 8),
// standing in for the physical testbed: congestion behaviour — queue
// build-up, drops, RTT inflation — emerges from the same mechanics.
package sim

import (
	"container/heap"
	"time"

	"repro/internal/obs"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index, -1 once removed
}

// Cancel prevents the event from firing if it has not fired yet.
func (e *Event) Cancel() {
	if e != nil {
		e.fn = nil
	}
}

// eventHeap orders events by time, breaking ties by scheduling order so the
// simulation is deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Simulator is not safe for concurrent use; all callbacks run
// on the calling goroutine inside Run.
type Simulator struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	metrics *Metrics // nil = instrumentation off (one branch per event)
}

// New returns an empty simulator with the clock at zero. When a process-wide
// obs registry is installed (obs.SetDefault), the simulator attaches to it;
// otherwise instrumentation is off until SetMetrics.
func New() *Simulator {
	s := &Simulator{}
	if r := obs.Default(); r != nil {
		s.metrics = NewMetrics(r)
	}
	return s
}

// Now reports the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule arranges for fn to run delay after the current simulated time.
// Negative delays are treated as zero.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t. Times in the past
// are clamped to the present.
func (s *Simulator) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	if s.metrics != nil {
		s.metrics.EventsScheduled.Inc()
	}
	return e
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() { s.RunUntil(1<<63 - 1) }

// RunUntil executes events with timestamps ≤ end, then advances the clock to
// end (if any event ran past it the clock stays at the last event time).
func (s *Simulator) RunUntil(end time.Duration) {
	m := s.metrics
	var wallStart time.Time
	var simStart time.Duration
	if m != nil {
		wallStart = time.Now()
		simStart = s.now
	}
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > end {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		if e.fn != nil {
			fn := e.fn
			e.fn = nil
			if m != nil {
				m.EventsDispatched.Inc()
			}
			fn()
		}
	}
	if s.now < end && end < 1<<62 {
		s.now = end
	}
	if m != nil {
		wall := time.Since(wallStart)
		simAdvance := s.now - simStart
		m.WallNanos.Add(wall.Nanoseconds())
		m.SimNanos.Add(simAdvance.Nanoseconds())
		if wall > 0 {
			m.TimeRatio.Set(simAdvance.Seconds() / wall.Seconds())
		}
	}
}

// Pending reports how many events are scheduled (including cancelled ones
// that have not been drained yet).
func (s *Simulator) Pending() int { return len(s.events) }
