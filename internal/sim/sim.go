// Package sim is a packet-level discrete-event network simulator: an event
// loop plus links with finite rate, propagation delay and drop-tail queues.
// It is the substrate for the paper's lab experiments (Figures 4, 7 and 8),
// standing in for the physical testbed: congestion behaviour — queue
// build-up, drops, RTT inflation — emerges from the same mechanics.
//
// The event core is allocation-free in steady state: events and packets are
// recycled through per-simulator free lists, the scheduler is a hand-rolled
// binary heap over concrete types (no container/heap interface dispatch),
// and link delivery uses typed pre-bound events instead of escaping
// closures. See DESIGN.md §9 for the ownership rules and why determinism
// survives pooling.
package sim

import (
	"time"

	"repro/internal/obs"
)

// simEndOfTime is the sentinel deadline meaning "run until the event queue
// drains". RunUntil never advances the clock to it, so Run leaves the clock
// at the last event's timestamp.
const simEndOfTime = time.Duration(1<<63 - 1)

// eventKind discriminates pooled event payloads: a plain callback, or one
// of the two pre-bound link hops that used to be closures.
type eventKind uint8

const (
	evFunc       eventKind = iota // fn()
	evSerialized                  // link finished serializing pkt: start propagation
	evDeliver                     // pkt finished propagating: hand to destination
)

// Event is a scheduled callback, owned by the simulator's event pool. User
// code never holds an *Event directly — Schedule and At return an EventRef,
// whose generation counter makes Cancel safe after the event fires and its
// storage is reused for a later event.
type Event struct {
	at    time.Duration
	seq   uint64
	gen   uint32
	index int32 // heap index, -1 once removed
	kind  eventKind
	fn    func()
	link  *Link
	pkt   *Packet
	sim   *Simulator
}

// EventRef is a cancellation handle for a scheduled event. The zero value
// refers to no event; Cancel and Pending on it are no-ops. A ref goes stale
// the moment its event fires, is cancelled, or is otherwise recycled —
// stale refs are harmless.
type EventRef struct {
	e   *Event
	gen uint32
}

// Pending reports whether the referenced event is still scheduled (not yet
// fired or cancelled).
func (r EventRef) Pending() bool { return r.e != nil && r.e.gen == r.gen }

// Cancel removes the event from the schedule if it has not fired yet.
// Unlike lazy cancellation, the event is deleted from the heap immediately:
// cancel-heavy workloads (pace timers, RTO timers) do not pin memory until
// their timestamps drain, and Pending() stays accurate.
func (r EventRef) Cancel() {
	e := r.e
	if e == nil || e.gen != r.gen {
		return // zero ref, already fired, or already cancelled
	}
	s := e.sim
	s.heapRemove(int(e.index))
	s.releaseEvent(e)
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Simulator is not safe for concurrent use; all callbacks run
// on the calling goroutine inside Run.
type Simulator struct {
	now     time.Duration
	events  []*Event // binary min-heap on (at, seq)
	seq     uint64
	metrics *Metrics // nil = instrumentation off (one branch per event)

	freeEvents []*Event  // event pool
	freePkts   []*Packet // packet pool
}

// New returns an empty simulator with the clock at zero. When a process-wide
// obs registry is installed (obs.SetDefault), the simulator attaches to it;
// otherwise instrumentation is off until SetMetrics.
func New() *Simulator {
	s := &Simulator{}
	if r := obs.Default(); r != nil {
		s.metrics = NewMetrics(r)
	}
	return s
}

// Now reports the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule arranges for fn to run delay after the current simulated time.
// Negative delays are treated as zero.
func (s *Simulator) Schedule(delay time.Duration, fn func()) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t. Times in the past
// are clamped to the present.
func (s *Simulator) At(t time.Duration, fn func()) EventRef {
	e := s.schedule(t)
	e.kind = evFunc
	e.fn = fn
	return EventRef{e: e, gen: e.gen}
}

// scheduleLink arranges a typed link event: no closure, the link and packet
// ride on the pooled event itself.
func (s *Simulator) scheduleLink(delay time.Duration, kind eventKind, l *Link, p *Packet) {
	e := s.schedule(s.now + delay)
	e.kind = kind
	e.link = l
	e.pkt = p
}

// schedule allocates a pooled event at absolute time t (clamped to the
// present) and pushes it onto the heap.
func (s *Simulator) schedule(t time.Duration) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := s.allocEvent()
	e.at = t
	e.seq = s.seq
	s.heapPush(e)
	if s.metrics != nil {
		s.metrics.EventsScheduled.Inc()
	}
	return e
}

// allocEvent takes an event from the pool, or grows the pool by one.
func (s *Simulator) allocEvent() *Event {
	if n := len(s.freeEvents); n > 0 {
		e := s.freeEvents[n-1]
		s.freeEvents[n-1] = nil
		s.freeEvents = s.freeEvents[:n-1]
		return e
	}
	return &Event{sim: s}
}

// releaseEvent returns e to the pool. Bumping the generation invalidates
// every outstanding EventRef to this occupancy, which is what makes Cancel
// after reuse safe.
func (s *Simulator) releaseEvent(e *Event) {
	e.gen++
	e.index = -1
	e.fn = nil
	e.link = nil
	e.pkt = nil
	s.freeEvents = append(s.freeEvents, e)
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() { s.RunUntil(simEndOfTime) }

// RunUntil executes events with timestamps ≤ end, then advances the clock to
// end (if any event ran past it the clock stays at the last event time).
func (s *Simulator) RunUntil(end time.Duration) {
	m := s.metrics
	var wallStart time.Time
	var simStart time.Duration
	if m != nil {
		wallStart = time.Now() //sammy:nondeterministic-ok: wall clock feeds only the obs TimeRatio/WallNanos gauges, never simulation state
		simStart = s.now
	}
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > end {
			break
		}
		s.heapPopRoot()
		s.now = e.at
		// Copy the payload out and recycle the event *before* dispatching:
		// the callback may schedule and immediately receive this very slot,
		// and any EventRef to the old occupancy is already stale.
		kind, fn, link, pkt := e.kind, e.fn, e.link, e.pkt
		s.releaseEvent(e)
		if m != nil {
			m.EventsDispatched.Inc()
		}
		switch kind {
		case evFunc:
			fn()
		case evSerialized:
			link.onSerialized(pkt)
		case evDeliver:
			link.deliver(pkt)
		}
	}
	if s.now < end && end != simEndOfTime {
		s.now = end
	}
	if m != nil {
		wall := time.Since(wallStart) //sammy:nondeterministic-ok: wall clock feeds only the obs TimeRatio/WallNanos gauges, never simulation state
		simAdvance := s.now - simStart
		m.WallNanos.Add(wall.Nanoseconds())
		m.SimNanos.Add(simAdvance.Nanoseconds())
		if wall > 0 {
			m.TimeRatio.Set(simAdvance.Seconds() / wall.Seconds())
		}
	}
}

// Pending reports how many events are scheduled. Cancelled events are
// removed from the heap immediately, so they never count.
func (s *Simulator) Pending() int { return len(s.events) }

// --- event heap -----------------------------------------------------------
//
// A hand-rolled binary min-heap on (at, seq). seq is unique per event, so
// the order is a strict total order: any correct heap implementation pops
// events in exactly the same sequence, which is what keeps paired-seed
// traces byte-identical across scheduler rewrites.

// eventLess orders events by time, breaking ties by scheduling order so the
// simulation is deterministic.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) heapPush(e *Event) {
	h := append(s.events, e)
	e.index = int32(len(h) - 1)
	s.events = h
	s.siftUp(len(h) - 1)
}

// heapPopRoot removes the minimum event. The caller already holds s.events[0].
func (s *Simulator) heapPopRoot() {
	h := s.events
	n := len(h) - 1
	h[0].index = -1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	s.events = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

// heapRemove deletes the event at heap position i (Cancel's eager removal).
func (s *Simulator) heapRemove(i int) {
	h := s.events
	n := len(h) - 1
	h[i].index = -1
	if i != n {
		h[i] = h[n]
		h[i].index = int32(i)
	}
	h[n] = nil
	s.events = h[:n]
	if i < n {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

func (s *Simulator) siftUp(i int) {
	h := s.events
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !eventLess(e, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = e
	e.index = int32(i)
}

// siftDown restores the heap below i, reporting whether e moved.
func (s *Simulator) siftDown(i int) bool {
	h := s.events
	n := len(h)
	e := h[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(h[r], h[child]) {
			child = r
		}
		c := h[child]
		if !eventLess(c, e) {
			break
		}
		h[i] = c
		c.index = int32(i)
		i = child
	}
	h[i] = e
	e.index = int32(i)
	return i > start
}

// --- packet pool ----------------------------------------------------------

// AllocPacket takes a zeroed packet from the simulator's pool (growing it
// when empty). Pooled packets are recycled by the link layer: once passed to
// a Sender the sender must not touch the packet again, and delivery handlers
// must not retain it past the callback — copy the fields out if needed.
func (s *Simulator) AllocPacket() *Packet {
	if n := len(s.freePkts); n > 0 {
		p := s.freePkts[n-1]
		s.freePkts[n-1] = nil
		s.freePkts = s.freePkts[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// FreePacket returns p to the pool, zeroed. Packets that did not come from
// AllocPacket (hand-built in tests, say) are left alone, so the recycling
// protocol is opt-in for packet producers.
func (s *Simulator) FreePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	*p = Packet{pooled: true}
	s.freePkts = append(s.freePkts, p)
}
