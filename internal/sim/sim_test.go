package sim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	var zeroRef EventRef
	zeroRef.Cancel() // must not panic
	e.Cancel()       // double-cancel must be a no-op too
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []int
	s.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	s.Schedule(30*time.Millisecond, func() { fired = append(fired, 2) })
	s.RunUntil(20 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want 20ms", s.Now())
	}
	s.Run()
	if len(fired) != 2 {
		t.Errorf("fired = %v after Run", fired)
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.Schedule(time.Second, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run()
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 4*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {
		s.Schedule(-time.Hour, func() {
			if s.Now() != time.Second {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestClockMonotoneProperty(t *testing.T) {
	// Whatever delays are scheduled, observed event times are non-decreasing.
	f := func(delaysMs []uint16) bool {
		s := New()
		var last time.Duration
		ok := true
		for _, d := range delaysMs {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	s := New()
	var deliveredAt time.Duration
	dst := HandlerFunc(func(p *Packet) { deliveredAt = s.Now() })
	// 12 Mbps link: a 1500 B packet serializes in 1 ms. Plus 5 ms delay.
	l := NewLink(s, LinkConfig{Rate: 12 * units.Mbps, Delay: 5 * time.Millisecond}, dst)
	l.Send(&Packet{Size: 1500})
	s.Run()
	want := 6 * time.Millisecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestLinkBackToBackPackets(t *testing.T) {
	s := New()
	var times []time.Duration
	dst := HandlerFunc(func(p *Packet) { times = append(times, s.Now()) })
	l := NewLink(s, LinkConfig{Rate: 12 * units.Mbps, Delay: 5 * time.Millisecond}, dst)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Seq: int64(i), Size: 1500})
	}
	s.Run()
	// Serialization is pipelined with propagation: deliveries at 6, 7, 8 ms.
	want := []time.Duration{6 * time.Millisecond, 7 * time.Millisecond, 8 * time.Millisecond}
	if len(times) != 3 {
		t.Fatalf("delivered %d packets", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	s := New()
	delivered := 0
	dst := HandlerFunc(func(p *Packet) { delivered++ })
	// Queue limit of 3000 B holds two 1500 B packets beyond the one in
	// flight.
	l := NewLink(s, LinkConfig{Rate: 12 * units.Mbps, Delay: time.Millisecond, QueueLimit: 3000}, dst)
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(&Packet{Seq: int64(i), Size: 1500}) {
			accepted++
		}
	}
	s.Run()
	// First Send starts transmitting immediately (dequeued), so queue holds
	// the next two; the rest drop.
	if accepted != 3 {
		t.Errorf("accepted = %d, want 3", accepted)
	}
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	if l.Stats.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", l.Stats.Dropped)
	}
	if got := l.Stats.LossRate(); got != 0.7 {
		t.Errorf("LossRate = %v, want 0.7", got)
	}
}

func TestLinkConservation(t *testing.T) {
	// Property: sent = delivered once drained; no packet is lost inside the
	// link itself (drops happen only at enqueue).
	f := func(sizes []uint8) bool {
		s := New()
		delivered := 0
		l := NewLink(s, LinkConfig{Rate: 10 * units.Mbps, Delay: time.Millisecond, QueueLimit: 10000},
			HandlerFunc(func(p *Packet) { delivered++ }))
		sent := 0
		for _, sz := range sizes {
			if l.Send(&Packet{Size: units.Bytes(int64(sz) + 1)}) {
				sent++
			}
		}
		s.Run()
		return delivered == sent && int64(sent) == l.Stats.Sent && l.QueueBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinkPeakQueue(t *testing.T) {
	s := New()
	l := NewLink(s, LinkConfig{Rate: 12 * units.Mbps, Delay: 0, QueueLimit: 100000},
		HandlerFunc(func(p *Packet) {}))
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Size: 1500})
	}
	// Head packet dequeues immediately, so peak queue is 4 packets.
	if l.Stats.PeakQueue != 6000 {
		t.Errorf("PeakQueue = %d, want 6000", l.Stats.PeakQueue)
	}
	s.Run()
}

func TestClassifier(t *testing.T) {
	c := NewClassifier()
	var got []FlowID
	c.Register(1, HandlerFunc(func(p *Packet) { got = append(got, p.Flow) }))
	c.Register(2, HandlerFunc(func(p *Packet) { got = append(got, p.Flow) }))
	c.HandlePacket(&Packet{Flow: 1})
	c.HandlePacket(&Packet{Flow: 2})
	c.HandlePacket(&Packet{Flow: 99}) // unknown: dropped silently
	c.Unregister(2)
	c.HandlePacket(&Packet{Flow: 2})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got = %v", got)
	}
}

func TestNewLinkPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero rate")
		}
	}()
	NewLink(New(), LinkConfig{Rate: 0}, nil)
}
